package bench

import (
	"context"
	"fmt"
	"strings"

	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

// Table3Result is the LLM evaluation matrix: per trace (5 attacks + 2
// benign), whether each model classified it correctly.
type Table3Result struct {
	Models  []string
	Traces  []string
	Correct map[string]map[string]bool // trace → model → correct
}

// table3Attacks lists the attack rows in the paper's order.
var table3Attacks = []ue.AttackKind{
	ue.AttackBTSDoS, ue.AttackBlindDoS, ue.AttackUplinkIDExtraction,
	ue.AttackDownlinkIDExtraction, ue.AttackNullCipher,
}

var table3Expected = map[ue.AttackKind]llm.AttackClass{
	ue.AttackBTSDoS:               llm.ClassBTSDoS,
	ue.AttackBlindDoS:             llm.ClassBlindDoS,
	ue.AttackUplinkIDExtraction:   llm.ClassUplinkIDExtraction,
	ue.AttackDownlinkIDExtraction: llm.ClassDownlinkIDExtraction,
	ue.AttackNullCipher:           llm.ClassNullCipher,
}

// RunTable3 reproduces Table 3: the five hosted model personalities are
// queried over the real REST path with the zero-shot prompt for each
// attack trace and two benign traces; a ✓ requires the correct verdict
// and, for attacks, the correct top classification.
func RunTable3(cfg Config) (*Table3Result, error) {
	return runTable3(cfg, false)
}

// RunTable3RAG repeats the Table 3 experiment with retrieval-augmented
// prompts (the paper's §5 "Specialized LLM for 6G" direction): relevant
// 3GPP passages are appended to each prompt, lifting the zero-shot blind
// spots.
func RunTable3RAG(cfg Config) (*Table3Result, error) {
	return runTable3(cfg, true)
}

func runTable3(cfg Config, rag bool) (*Table3Result, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	srv := llm.NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer shutdown()

	res := &Table3Result{Correct: make(map[string]map[string]bool)}
	for _, m := range llm.DefaultModels {
		res.Models = append(res.Models, m.Name)
	}

	evaluate := func(traceName string, window mobiflow.Trace, want llm.AttackClass, wantBenign bool) error {
		res.Traces = append(res.Traces, traceName)
		res.Correct[traceName] = make(map[string]bool)
		for _, m := range llm.DefaultModels {
			client := llm.NewClient("http://"+addr, m.Name)
			client.RAG = rag
			analysis, err := client.AnalyzeWindow(context.Background(), window)
			if err != nil {
				return fmt.Errorf("bench: %s on %s: %w", m.Name, traceName, err)
			}
			var correct bool
			if wantBenign {
				correct = analysis.Verdict == llm.VerdictBenign
			} else {
				correct = analysis.Verdict == llm.VerdictAnomalous && analysis.TopClass() == want
			}
			res.Correct[traceName][m.Name] = correct
		}
		return nil
	}

	for _, kind := range table3Attacks {
		window := attackTrace(env, kind)
		if err := evaluate(kind.String(), window, table3Expected[kind], false); err != nil {
			return nil, err
		}
	}
	// Two benign windows from different parts of the capture.
	b1, b2 := benignWindows(env)
	if err := evaluate("Benign Sequence 1", b1, llm.ClassUnknown, true); err != nil {
		return nil, err
	}
	if err := evaluate("Benign Sequence 2", b2, llm.ClassUnknown, true); err != nil {
		return nil, err
	}
	return res, nil
}

func benignWindows(env *Env) (mobiflow.Trace, mobiflow.Trace) {
	var benign mobiflow.Trace
	for i, r := range env.Mixed.Trace {
		if env.Mixed.AttackOf[i] == -1 {
			benign = append(benign, r)
		}
	}
	n := len(benign)
	take := func(from int) mobiflow.Trace {
		to := from + 15
		if to > n {
			to = n
		}
		return benign[from:to]
	}
	return take(0), take(n / 2)
}

// Format renders the matrix in the paper's layout.
func (r *Table3Result) Format() string {
	header := append([]string{"Attack / Trace"}, r.Models...)
	var rows [][]string
	for _, trace := range r.Traces {
		row := []string{trace}
		for _, model := range r.Models {
			mark := "x"
			if r.Correct[trace][model] {
				mark = "OK"
			}
			row = append(row, mark)
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("Table 3: Evaluation results from different LLMs (OK = correct classification)\n\n")
	b.WriteString(formatTable(header, rows))
	return b.String()
}

// Score counts correct cells per model (ChatGPT-4o leads in the paper).
func (r *Table3Result) Score() map[string]int {
	out := make(map[string]int)
	for _, trace := range r.Traces {
		for _, model := range r.Models {
			if r.Correct[trace][model] {
				out[model]++
			}
		}
	}
	return out
}
