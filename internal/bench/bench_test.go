package bench

import (
	"strings"
	"testing"

	"github.com/6g-xsec/xsec/internal/ue"
)

func quickCfg() Config { return Quick(77) }

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"RNTI", "S-TMSI", "SUPI", "Cipher_alg", "Establish_cause"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy <= 0.5 || row.Accuracy > 1 {
			t.Errorf("%s/%s accuracy = %v", row.Dataset, row.Model, row.Accuracy)
		}
	}
	// Benign rows are high-but-imperfect; attack rows have recall.
	if res.Rows[0].Dataset != "Benign" || !res.Rows[0].NA {
		t.Error("row 0 should be the benign AE row")
	}
	if res.Rows[2].Recall < 0.7 {
		t.Errorf("attack AE recall = %v", res.Rows[2].Recall)
	}
	// The paper's headline: every attack event detected.
	if res.EventRecallAE < 0.999 {
		t.Errorf("AE event recall = %v, want 1.0", res.EventRecallAE)
	}
	if res.EventRecallLSTM < 0.999 {
		t.Errorf("LSTM event recall = %v, want 1.0", res.EventRecallLSTM)
	}
	out := res.Format()
	if !strings.Contains(out, "Autoencoder") || !strings.Contains(out, "N/A") {
		t.Errorf("Format output malformed:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	out, err := Figure2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RRCSetupRequest", "IdentityResponse", "plaintext identity", "RNTI 0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
	// The RNTI stream shows multiple distinct identifiers.
	if strings.Count(out, "RRC Conn. ... Auth. Req.") < 5 {
		t.Error("Figure 2b stream too short")
	}
}

func TestFigure4(t *testing.T) {
	res, err := RunFigure4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || res.Threshold <= 0 {
		t.Fatal("empty figure")
	}
	// Attack points exist above the threshold, benign mass below.
	above, benignBelow, benignTotal := 0, 0, 0
	for _, p := range res.Points {
		if p.Malicious && p.Error > res.Threshold {
			above++
		}
		if !p.Malicious {
			benignTotal++
			if p.Error <= res.Threshold {
				benignBelow++
			}
		}
	}
	if above == 0 {
		t.Error("no attack point above threshold")
	}
	if float64(benignBelow)/float64(benignTotal) < 0.9 {
		t.Errorf("benign mass below threshold = %d/%d", benignBelow, benignTotal)
	}
	out := res.Format()
	if !strings.Contains(out, "T>") || !strings.Contains(out, "legend") {
		t.Error("plot malformed")
	}
	// Same-type instances show group similarity (paper's ①/② remark).
	sim := res.GroupSimilarity()
	if len(sim) == 0 {
		t.Error("no group similarity computed")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res, err := RunTable3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's matrix, row by row.
	want := map[string]map[string]bool{
		ue.AttackBTSDoS.String():               {"chatgpt-4o": true, "gemini": true, "copilot": true, "llama3": false, "claude-3-sonnet": false},
		ue.AttackBlindDoS.String():             {"chatgpt-4o": true, "gemini": false, "copilot": false, "llama3": true, "claude-3-sonnet": false},
		ue.AttackUplinkIDExtraction.String():   {"chatgpt-4o": false, "gemini": false, "copilot": false, "llama3": false, "claude-3-sonnet": true},
		ue.AttackDownlinkIDExtraction.String(): {"chatgpt-4o": true, "gemini": true, "copilot": false, "llama3": true, "claude-3-sonnet": true},
		ue.AttackNullCipher.String():           {"chatgpt-4o": true, "gemini": true, "copilot": false, "llama3": true, "claude-3-sonnet": true},
		"Benign Sequence 1":                    {"chatgpt-4o": true, "gemini": true, "copilot": true, "llama3": true, "claude-3-sonnet": true},
		"Benign Sequence 2":                    {"chatgpt-4o": true, "gemini": true, "copilot": true, "llama3": true, "claude-3-sonnet": true},
	}
	for trace, row := range want {
		for model, correct := range row {
			if got := res.Correct[trace][model]; got != correct {
				t.Errorf("%s / %s = %v, paper says %v", trace, model, got, correct)
			}
		}
	}
	// ChatGPT-4o leads with a single miss (6/7).
	scores := res.Score()
	if scores["chatgpt-4o"] != 6 {
		t.Errorf("chatgpt-4o score = %d, want 6", scores["chatgpt-4o"])
	}
	for model, s := range scores {
		if model != "chatgpt-4o" && s > scores["chatgpt-4o"] {
			t.Errorf("%s (%d) outscores chatgpt-4o", model, s)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "chatgpt-4o") {
		t.Error("Format output malformed")
	}
}

func TestFigure5(t *testing.T) {
	out, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AI security analyst", "DATA:", "Signaling Storm", "ANOMALOUS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 missing %q", want)
		}
	}
}

func TestAblationThreshold(t *testing.T) {
	res, err := AblationThreshold(quickCfg(), []float64{99, 95, 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Lower percentile → lower benign accuracy, higher (or equal) recall.
	if res.Rows[0].BenignAccuracy < res.Rows[2].BenignAccuracy {
		t.Error("benign accuracy not monotone in percentile")
	}
	if res.Rows[0].Recall > res.Rows[2].Recall {
		t.Error("recall not monotone against percentile")
	}
	if !strings.Contains(res.Format(), "p99") {
		t.Error("Format malformed")
	}
}

func TestAblationWindowSize(t *testing.T) {
	res, err := AblationWindowSize(quickCfg(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.EventRecall < 0.999 {
			t.Errorf("%s: event recall %v", row.Param, row.EventRecall)
		}
	}
}

func TestAblationBottleneck(t *testing.T) {
	res, err := AblationBottleneck(quickCfg(), []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestEnvCaching(t *testing.T) {
	cfg := quickCfg()
	a, err := BuildEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("env not cached for identical configs")
	}
}
