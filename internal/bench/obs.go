package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/ue"
)

// This file produces the observability baseline (BENCH_obs.json): it
// runs the full live pipeline — gNB → E2 → MobiWatch → LLM analyzer —
// against one attack and snapshots the obs registry, so the measured
// end-to-end detection latency (xsec_detect_latency_seconds) and the
// pipeline counters are committed machine-readable (`xsec-bench -obs`).

// LatencySummary condenses one latency histogram.
type LatencySummary struct {
	Count   uint64               `json:"count"`
	Sum     float64              `json:"sum_seconds"`
	P50     float64              `json:"p50_seconds"`
	P90     float64              `json:"p90_seconds"`
	P99     float64              `json:"p99_seconds"`
	Buckets []obs.BucketSnapshot `json:"buckets"`
}

// ObsBenchResult is the machine-readable observability baseline.
type ObsBenchResult struct {
	GoMaxProcs     int                  `json:"gomaxprocs"`
	NumCPU         int                  `json:"num_cpu"`
	Attack         string               `json:"attack"`
	RecordsSeen    uint64               `json:"records_seen"`
	WindowsScored  uint64               `json:"windows_scored"`
	AlertsRaised   uint64               `json:"alerts_raised"`
	CasesProcessed uint64               `json:"cases_processed"`
	DetectLatency  LatencySummary       `json:"detect_latency"`
	Series         []obs.SeriesSnapshot `json:"series"`
}

// RunObsBench deploys the live framework, launches a BTS DoS, lets the
// pipeline drain, and snapshots the observability registry.
//
// The registry is process-cumulative, so the snapshot reflects every
// pipeline activity of this process; run it as the binary's only
// workload (as `xsec-bench -obs` does) for clean numbers.
func RunObsBench(cfg Config) (*ObsBenchResult, error) {
	cfg.defaults()
	fw, err := core.New(core.Options{
		Seed:         cfg.Seed,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: cfg.Epochs, Seed: cfg.Seed, Window: cfg.Window},
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	benign, err := fw.CollectBenign(cfg.TrainSessions)
	if err != nil {
		return nil, err
	}
	if err := fw.Train(benign); err != nil {
		return nil, err
	}
	if err := fw.DeployXApps(); err != nil {
		return nil, err
	}

	var cases uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range fw.Cases() {
			cases++
		}
	}()

	attacker := fw.NewUE(ue.OAIUE, 901)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }
	// The attack may be cut short by the network (that is its telemetry
	// signature); only infrastructure errors matter here.
	_, _ = attacker.RunBTSDoS(fw.GNB, 8)
	time.Sleep(800 * time.Millisecond) // let the pipeline drain

	ws := fw.WatchStats()
	fw.Close()
	<-done

	res := &ObsBenchResult{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Attack:         "bts-dos",
		RecordsSeen:    ws.RecordsSeen.Load(),
		WindowsScored:  ws.WindowsScored.Load(),
		AlertsRaised:   ws.AlertsRaised.Load(),
		CasesProcessed: cases,
		Series:         obs.Default.Snapshot(),
	}
	for _, s := range res.Series {
		if s.Name == "xsec_detect_latency_seconds" {
			res.DetectLatency = LatencySummary{
				Count: s.Count, Sum: s.Sum, Buckets: s.Buckets,
				P50: histQuantile(s.Buckets, 0.50),
				P90: histQuantile(s.Buckets, 0.90),
				P99: histQuantile(s.Buckets, 0.99),
			}
		}
	}
	return res, nil
}

// histQuantile estimates a quantile from cumulative histogram buckets
// by linear interpolation within the containing bucket (the classic
// Prometheus histogram_quantile estimator).
func histQuantile(buckets []obs.BucketSnapshot, q float64) float64 {
	return obs.HistQuantile(buckets, q)
}

// JSON renders the baseline for BENCH_obs.json.
func (r *ObsBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the headline numbers as an aligned table.
func (r *ObsBenchResult) Format() string {
	rows := [][]string{
		{"records seen", fmt.Sprintf("%d", r.RecordsSeen)},
		{"windows scored", fmt.Sprintf("%d", r.WindowsScored)},
		{"alerts raised", fmt.Sprintf("%d", r.AlertsRaised)},
		{"cases processed", fmt.Sprintf("%d", r.CasesProcessed)},
		{"detect latency p50", fmt.Sprintf("%.1f ms", r.DetectLatency.P50*1e3)},
		{"detect latency p90", fmt.Sprintf("%.1f ms", r.DetectLatency.P90*1e3)},
		{"detect latency p99", fmt.Sprintf("%.1f ms", r.DetectLatency.P99*1e3)},
		{"metric series", fmt.Sprintf("%d", len(r.Series))},
	}
	out := fmt.Sprintf("Observability baseline (%s, GOMAXPROCS=%d)\n\n", r.Attack, r.GoMaxProcs)
	out += formatTable([]string{"measure", "value"}, rows)
	return out
}
