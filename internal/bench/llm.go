package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ue"
)

// This file produces the LLM analyzer throughput baseline
// (BENCH_llm.json, `xsec-bench -llm`): alerts/sec through the serving
// layer with a cold vs warm verdict cache, coalescing under an identical
// burst, the hedged latency tail against a straggling endpoint, and a
// saturation drill through the full pipeline proving zero dropped alerts
// (every alert gets a live, cached, or degraded verdict) with complete
// provenance chains behind every issued mitigation.

// LLMOptions scales the benchmark.
type LLMOptions struct {
	// Seed drives dataset generation and training (default 1).
	Seed int64
	// Smoke shrinks every phase so CI exercises the path quickly.
	Smoke bool
}

// LLMBenchResult is the machine-readable baseline.
type LLMBenchResult struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Model      string `json:"model"`
	Workers    int    `json:"workers"`
	Smoke      bool   `json:"smoke,omitempty"`

	// Cold vs warm cache throughput over the same distinct-window set.
	ColdAlerts       int     `json:"cold_alerts"`
	ColdSeconds      float64 `json:"cold_seconds"`
	ColdAlertsPerSec float64 `json:"cold_alerts_per_sec"`
	WarmAlerts       int     `json:"warm_alerts"`
	WarmSeconds      float64 `json:"warm_seconds"`
	WarmAlertsPerSec float64 `json:"warm_alerts_per_sec"`
	// WarmSpeedup is warm/cold alerts-per-sec from the same run; the
	// acceptance floor is 5×.
	WarmSpeedup float64 `json:"warm_speedup"`

	// Coalescing burst: identical concurrent alerts share one flight.
	BurstCallers  int    `json:"burst_callers"`
	BurstUpstream uint64 `json:"burst_upstream_requests"`
	BurstShared   uint64 `json:"burst_coalesced_or_cached"`

	// Hedged tail against a straggling endpoint, same workload with
	// hedging off then on.
	HedgeCalls    int     `json:"hedge_calls"`
	BaselineP50MS float64 `json:"baseline_p50_ms"`
	BaselineP99MS float64 `json:"baseline_p99_ms"`
	HedgedP50MS   float64 `json:"hedged_p50_ms"`
	HedgedP99MS   float64 `json:"hedged_p99_ms"`
	HedgeAttempts uint64  `json:"hedge_attempts"`
	HedgeWins     uint64  `json:"hedge_wins"`

	// Saturation drill: the full pipeline against a slow endpoint with a
	// tiny admission budget. Every case must carry a verdict.
	SatCases            int     `json:"sat_cases"`
	SatCasesWithVerdict int     `json:"sat_cases_with_verdict"`
	SatDropped          int     `json:"sat_dropped"`
	SatSeconds          float64 `json:"sat_seconds"`
	SatCasesPerSec      float64 `json:"sat_cases_per_sec"`
	SatLive             uint64  `json:"sat_live"`
	SatCached           uint64  `json:"sat_cached"`
	SatShed             uint64  `json:"sat_shed"`
	SatShedRate         float64 `json:"sat_shed_rate"`
	GovernorTransitions int     `json:"governor_transitions"`

	// Audit of the drill: issued mitigations vs complete prov chains.
	MitigationsIssued int `json:"mitigations_issued"`
	ChainsComplete    int `json:"chains_complete"`
	ChainsIncomplete  int `json:"chains_incomplete"`

	Series []obs.SeriesSnapshot `json:"llm_series"`
}

// RunLLMBench measures the LLM serving layer.
func RunLLMBench(opts LLMOptions) (*LLMBenchResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	const model = "chatgpt-4o"
	res := &LLMBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Model:      model,
		Workers:    8,
		Smoke:      opts.Smoke,
	}
	distinct, burst, hedgeN := 80, 32, 100
	if opts.Smoke {
		distinct, burst, hedgeN = 16, 8, 24
	}

	mixed, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Fleet: 10, Seed: opts.Seed},
		InstancesPerAttack: 1,
		BenignBetween:      2,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: llm dataset: %w", err)
	}
	base := windowOfKind(mixed, ue.AttackBTSDoS)
	if len(base) == 0 {
		return nil, fmt.Errorf("bench: llm dataset has no attack window")
	}

	if err := res.runThroughput(base, model, distinct); err != nil {
		return nil, err
	}
	if err := res.runCoalesce(base, model, burst); err != nil {
		return nil, err
	}
	if err := res.runHedge(base, model, hedgeN); err != nil {
		return nil, err
	}
	if err := res.runSaturationDrill(opts); err != nil {
		return nil, err
	}

	for _, s := range obs.Default.Snapshot() {
		if strings.HasPrefix(s.Name, "xsec_llm_") {
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// windowOfKind extracts the telemetry of one attack event.
func windowOfKind(l *dataset.Labeled, kind ue.AttackKind) mobiflow.Trace {
	var w mobiflow.Trace
	for i, r := range l.Trace {
		if l.AttackOf[i] == int(kind) {
			w = append(w, r)
		}
	}
	return w
}

// variantWindows derives n distinct windows from one attack pattern by
// shifting sequence numbers — each renders a distinct prompt (distinct
// cache digest) with identical analytical content, the shape of a
// volumetric attack producing a stream of near-identical alerts.
func variantWindows(base mobiflow.Trace, n int) []mobiflow.Trace {
	out := make([]mobiflow.Trace, n)
	for i := range out {
		w := make(mobiflow.Trace, len(base))
		copy(w, base)
		for j := range w {
			w[j].Seq += uint64(i) * 1_000_000
		}
		out[i] = w
	}
	return out
}

// fanout pushes every window through call with a bounded worker pool and
// returns the wall-clock time.
func fanout(workers int, windows []mobiflow.Trace, call func(mobiflow.Trace) error) (time.Duration, error) {
	jobs := make(chan mobiflow.Trace)
	errs := make(chan error, len(windows))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for win := range jobs {
				if err := call(win); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, win := range windows {
		jobs <- win
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return elapsed, err
	default:
		return elapsed, nil
	}
}

// runThroughput measures cold vs warm cache alerts/sec over the same
// distinct-window set against a latency-modeled endpoint.
func (r *LLMBenchResult) runThroughput(base mobiflow.Trace, model string, distinct int) error {
	srv := llm.NewServer()
	srv.Latency = 5 * time.Millisecond // modeled remote inference time
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer shutdown()

	svc := llm.NewService(llm.NewClient("http://"+addr, model), llm.ServingOptions{
		MaxInflight: 16,
		AdmitWait:   5 * time.Second,  // throughput phase must not shed
		HedgeDelay:  10 * time.Second, // or hedge
	})
	defer svc.Close()
	windows := variantWindows(base, distinct)
	analyze := func(w mobiflow.Trace) error {
		a, err := svc.AnalyzeWindow(context.Background(), w)
		if err != nil {
			return err
		}
		if a == nil {
			return fmt.Errorf("bench: nil analysis")
		}
		return nil
	}

	cold, err := fanout(r.Workers, windows, analyze)
	if err != nil {
		return fmt.Errorf("bench: llm cold phase: %w", err)
	}
	warm, err := fanout(r.Workers, windows, analyze)
	if err != nil {
		return fmt.Errorf("bench: llm warm phase: %w", err)
	}
	r.ColdAlerts, r.WarmAlerts = distinct, distinct
	r.ColdSeconds = cold.Seconds()
	r.WarmSeconds = warm.Seconds()
	r.ColdAlertsPerSec = float64(distinct) / cold.Seconds()
	r.WarmAlertsPerSec = float64(distinct) / warm.Seconds()
	if r.ColdAlertsPerSec > 0 {
		r.WarmSpeedup = r.WarmAlertsPerSec / r.ColdAlertsPerSec
	}
	return nil
}

// runCoalesce fires an identical concurrent burst and counts how many
// upstream calls survive the single-flight layer.
func (r *LLMBenchResult) runCoalesce(base mobiflow.Trace, model string, burst int) error {
	srv := llm.NewServer()
	srv.Latency = 10 * time.Millisecond // hold the flight open for followers
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer shutdown()

	svc := llm.NewService(llm.NewClient("http://"+addr, model), llm.ServingOptions{
		HedgeDelay: 10 * time.Second,
	})
	defer svc.Close()

	var wg sync.WaitGroup
	var failed atomic.Uint64
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		go func() {
			defer wg.Done()
			if _, err := svc.AnalyzeWindow(context.Background(), base); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("bench: llm coalesce phase: %d of %d callers failed", n, burst)
	}
	r.BurstCallers = burst
	r.BurstUpstream = srv.Requests()
	r.BurstShared = svc.Stats().Coalesced.Load() + svc.Stats().CacheHits.Load()
	return nil
}

// stragglerEndpoint serves the expert rule base with a bimodal latency:
// most requests are fast, every strideth straggles — the tail shape
// hedged retries exist to cut.
func stragglerEndpoint(model string, fast, slow time.Duration, stride int) (string, func() error, error) {
	profile := llm.ChatGPT4o
	for _, m := range llm.DefaultModels {
		if m.Name == model {
			profile = m
		}
	}
	var reqs atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req llm.ChatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		findings, err := llm.AnalyzePrompt(req.Prompt)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(llm.ErrorResponse{Error: err.Error()})
			return
		}
		delay := fast
		if n := reqs.Add(1); stride > 0 && n%uint64(stride) == 0 {
			delay = slow
		}
		time.Sleep(delay)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(llm.ChatResponse{Model: req.Model, Text: profile.Respond(findings)})
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(l)
	return "http://" + l.Addr().String(), hs.Close, nil
}

// runHedge measures the latency tail with hedging off, then on, against
// the same straggling endpoint.
func (r *LLMBenchResult) runHedge(base mobiflow.Trace, model string, n int) error {
	windows := variantWindows(base, n)
	run := func(hedgeDelay time.Duration) ([]time.Duration, *llm.ServingStats, error) {
		baseURL, shutdown, err := stragglerEndpoint(model, 2*time.Millisecond, 60*time.Millisecond, 20)
		if err != nil {
			return nil, nil, err
		}
		defer shutdown()
		svc := llm.NewService(llm.NewClient(baseURL, model), llm.ServingOptions{
			CacheSize:   -1, // every call exercises the transport
			MaxInflight: 16,
			AdmitWait:   5 * time.Second,
			HedgeDelay:  hedgeDelay,
		})
		defer svc.Close()
		durs := make([]time.Duration, len(windows))
		var mu sync.Mutex
		idx := 0
		_, err = fanout(4, windows, func(w mobiflow.Trace) error {
			start := time.Now()
			a, err := svc.AnalyzeWindow(context.Background(), w)
			if err != nil {
				return err
			}
			if a.Served != llm.ServedLive {
				return fmt.Errorf("bench: hedge phase served %q", a.Served)
			}
			mu.Lock()
			durs[idx] = time.Since(start)
			idx++
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		stats := &llm.ServingStats{}
		stats.HedgeAttempts.Store(svc.Stats().HedgeAttempts.Load())
		stats.HedgeWins.Store(svc.Stats().HedgeWins.Load())
		return durs, stats, nil
	}

	baseline, _, err := run(-1) // hedging disabled
	if err != nil {
		return fmt.Errorf("bench: llm hedge baseline: %w", err)
	}
	hedged, stats, err := run(10 * time.Millisecond)
	if err != nil {
		return fmt.Errorf("bench: llm hedged run: %w", err)
	}
	r.HedgeCalls = n
	r.BaselineP50MS = quantileMS(baseline, 0.50)
	r.BaselineP99MS = quantileMS(baseline, 0.99)
	r.HedgedP50MS = quantileMS(hedged, 0.50)
	r.HedgedP99MS = quantileMS(hedged, 0.99)
	r.HedgeAttempts = stats.HedgeAttempts.Load()
	r.HedgeWins = stats.HedgeWins.Load()
	return nil
}

// runSaturationDrill runs the full pipeline — detection, pooled
// analyzer, enforcing mitigation — against a deliberately slow endpoint
// with a starvation-level admission budget, then audits the wreckage:
// every case must carry a verdict and every issued mitigation a complete
// provenance chain.
func (r *LLMBenchResult) runSaturationDrill(opts LLMOptions) error {
	srv := llm.NewServer()
	srv.Latency = 25 * time.Millisecond
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer shutdown()

	epochs, sessions, bursts := 12, 40, 3
	if opts.Smoke {
		bursts = 2
	}
	fw, err := core.New(core.Options{
		Seed:         opts.Seed,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: epochs, Seed: opts.Seed, Window: 4},
		LLMBaseURL:   "http://" + addr,
		LLMWorkers:   8,
		Mitigate:     "enforce",
		MitigateTTL:  30 * time.Second,
		LLMServing: llm.ServingOptions{
			MaxInflight:     1, // starve admission: 8 workers, 1 slot
			AdmitWait:       2 * time.Millisecond,
			HedgeDelay:      -1,
			BreakerTrip:     3,
			BreakerCooldown: 250 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			fw.Close()
		}
	}()

	benign, err := fw.CollectBenign(sessions)
	if err != nil {
		return err
	}
	if err := fw.Train(benign); err != nil {
		return err
	}
	if err := fw.DeployXApps(); err != nil {
		return err
	}

	var cases, verdicts atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range fw.Cases() {
			cases.Add(1)
			if c.Analysis != nil {
				verdicts.Add(1)
			}
		}
	}()

	victim := fw.NewUE(ue.Pixel5, 900)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		return err
	}
	attacker := fw.NewUE(ue.OAIUE, 901)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	start := time.Now()
	for i := 0; i < bursts; i++ {
		// Mitigation may squelch later bursts at the radio edge — that is
		// the loop working, not an error.
		_, _ = attacker.RunBTSDoS(fw.GNB, 8)
		_, _ = attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6)
		time.Sleep(400 * time.Millisecond)
	}
	time.Sleep(800 * time.Millisecond) // pipeline drain
	elapsed := time.Since(start)

	stats := fw.LLMServing().Stats()
	r.SatLive = stats.Live.Load()
	r.SatCached = stats.CacheHits.Load() + stats.Coalesced.Load()
	r.SatShed = stats.Shed.Load()
	r.GovernorTransitions = len(llm.GovernorJournal(fw.SDL))

	fw.Mitigator().Quiesce()
	fw.Prov().Flush()

	// Audit: every issued mitigation's chain must be complete end to end
	// — including chains whose verdict was served degraded.
	for _, en := range mitigate.Entries(fw.SDL) {
		issued := false
		for _, tr := range en.History {
			if tr.State == mitigate.StateIssued.String() {
				issued = true
				break
			}
		}
		if !issued {
			continue
		}
		r.MitigationsIssued++
		if en.Chain == "" {
			r.ChainsIncomplete++
			continue
		}
		id, err := prov.ParseChainID(en.Chain)
		if err != nil {
			r.ChainsIncomplete++
			continue
		}
		rec, err := prov.ReadChain(fw.SDL, id)
		if err != nil || len(rec.MissingStages()) > 0 {
			r.ChainsIncomplete++
			continue
		}
		r.ChainsComplete++
	}

	// Close the framework before reading the case tally: the pump's
	// channel closes once the pipeline drains.
	fw.Close()
	closed = true
	<-done
	r.SatCases = int(cases.Load())
	r.SatCasesWithVerdict = int(verdicts.Load())
	r.SatDropped = r.SatCases - r.SatCasesWithVerdict
	r.SatSeconds = elapsed.Seconds()
	if elapsed > 0 {
		r.SatCasesPerSec = float64(r.SatCases) / elapsed.Seconds()
	}
	total := r.SatLive + r.SatCached + r.SatShed
	if total > 0 {
		r.SatShedRate = float64(r.SatShed) / float64(total)
	}
	return nil
}

// quantileMS returns the q-quantile of the samples in milliseconds.
func quantileMS(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// JSON renders the baseline for BENCH_llm.json.
func (r *LLMBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the headline numbers.
func (r *LLMBenchResult) Format() string {
	out := fmt.Sprintf("LLM analyzer throughput baseline (model=%s, workers=%d, GOMAXPROCS=%d)\n\n",
		r.Model, r.Workers, r.GoMaxProcs)
	out += formatTable(
		[]string{"phase", "result"},
		[][]string{
			{"cold cache", fmt.Sprintf("%.0f alerts/s (%d alerts in %.2fs)", r.ColdAlertsPerSec, r.ColdAlerts, r.ColdSeconds)},
			{"warm cache", fmt.Sprintf("%.0f alerts/s (%d alerts in %.3fs)", r.WarmAlertsPerSec, r.WarmAlerts, r.WarmSeconds)},
			{"warm speedup", fmt.Sprintf("%.1fx", r.WarmSpeedup)},
			{"coalesced burst", fmt.Sprintf("%d callers -> %d upstream call(s), %d shared", r.BurstCallers, r.BurstUpstream, r.BurstShared)},
			{"tail p99 unhedged", fmt.Sprintf("%.1f ms (p50 %.1f ms)", r.BaselineP99MS, r.BaselineP50MS)},
			{"tail p99 hedged", fmt.Sprintf("%.1f ms (p50 %.1f ms, %d hedges, %d wins)", r.HedgedP99MS, r.HedgedP50MS, r.HedgeAttempts, r.HedgeWins)},
			{"saturation drill", fmt.Sprintf("%d cases, %d with verdict, %d dropped (%.0f%% shed)", r.SatCases, r.SatCasesWithVerdict, r.SatDropped, 100*r.SatShedRate)},
			{"verdict mix", fmt.Sprintf("live %d / cached %d / degraded %d, %d governor transition(s)", r.SatLive, r.SatCached, r.SatShed, r.GovernorTransitions)},
			{"audit", fmt.Sprintf("%d issued mitigation(s), %d complete chain(s), %d incomplete", r.MitigationsIssued, r.ChainsComplete, r.ChainsIncomplete)},
		})
	return out
}
