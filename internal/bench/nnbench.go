package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/nn"
)

// This file produces the NN performance baseline (BENCH_nn.json): wall-
// clock micro-measurements of the MobiWatch scoring and training hot
// paths, emitted machine-readable so future changes can be compared
// against the committed numbers (`xsec-bench -nn`).

// NNBenchEntry is one measured operation.
type NNBenchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// NNBenchResult is the machine-readable baseline. Speedups compare the
// worker-pool trace-scoring path against the sequential one on this
// machine; they approach 1.0 on a single core and scale with GOMAXPROCS.
type NNBenchResult struct {
	GoMaxProcs   int            `json:"gomaxprocs"`
	NumCPU       int            `json:"num_cpu"`
	TraceWindows int            `json:"trace_windows"`
	Entries      []NNBenchEntry `json:"entries"`
	SpeedupAE    float64        `json:"trace_ae_speedup"`
	SpeedupLSTM  float64        `json:"trace_lstm_speedup"`
}

// measure times f until at least minTime has elapsed and returns the
// per-op cost, warming up with one untimed call first.
func measure(minTime time.Duration, f func()) NNBenchEntry {
	f()
	var ops int
	var elapsed time.Duration
	batch := 1
	for elapsed < minTime {
		start := time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		elapsed += time.Since(start)
		ops += batch
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return NNBenchEntry{NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops), Ops: ops}
}

// RunNNBench builds the cached experiment environment and measures the
// NN hot paths.
func RunNNBench(cfg Config) (*NNBenchResult, error) {
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	models := env.Models
	vecs := feature.Vectorize(env.Mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	winsL, nexts := feature.WindowsLSTM(vecs, models.Window)
	if len(wins) == 0 || len(winsL) == 0 {
		return nil, fmt.Errorf("bench: mixed trace produced no windows")
	}

	res := &NNBenchResult{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		TraceWindows: len(wins),
	}
	const minTime = 200 * time.Millisecond
	add := func(name string, minT time.Duration, f func()) NNBenchEntry {
		e := measure(minT, f)
		e.Name = name
		res.Entries = append(res.Entries, e)
		return e
	}

	scratch := models.NewScoreScratch()
	i := 0
	add("ae_window_score", minTime, func() {
		models.ScoreAEWindowWith(scratch, wins[i%len(wins)])
		i++
	})
	j := 0
	add("lstm_window_score", minTime, func() {
		models.LSTM.ScoreWith(scratch.LSTM, winsL[j%len(winsL)], nexts[j%len(winsL)])
		j++
	})

	aeSeq := add("trace_ae_sequential", minTime, func() {
		models.ScoreTraceAEParallel(env.Mixed.Trace, 1)
	})
	aePar := add("trace_ae_parallel", minTime, func() {
		models.ScoreTraceAEParallel(env.Mixed.Trace, 0)
	})
	lstmSeq := add("trace_lstm_sequential", minTime, func() {
		models.ScoreTraceLSTMParallel(env.Mixed.Trace, 1)
	})
	lstmPar := add("trace_lstm_parallel", minTime, func() {
		models.ScoreTraceLSTMParallel(env.Mixed.Trace, 0)
	})
	res.SpeedupAE = aeSeq.NsPerOp / aePar.NsPerOp
	res.SpeedupLSTM = lstmSeq.NsPerOp / lstmPar.NsPerOp

	// One training epoch, sequential vs data-parallel, on the benign
	// window set the models were fitted to.
	trainWins := feature.WindowsAE(feature.Vectorize(env.Benign, models.Vocab), models.Window)
	dim := len(trainWins[0])
	add("ae_train_epoch_sequential", minTime, func() {
		ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(trainWins, nn.TrainConfig{Epochs: 1, Seed: 2, Workers: 1}); err != nil {
			panic(err)
		}
	})
	add("ae_train_epoch_parallel", minTime, func() {
		ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(trainWins, nn.TrainConfig{Epochs: 1, Seed: 2}); err != nil {
			panic(err)
		}
	})
	return res, nil
}

// JSON renders the baseline for BENCH_nn.json.
func (r *NNBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the baseline as an aligned table.
func (r *NNBenchResult) Format() string {
	rows := make([][]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		rows = append(rows, []string{e.Name, fmt.Sprintf("%.0f", e.NsPerOp), fmt.Sprintf("%d", e.Ops)})
	}
	out := fmt.Sprintf("NN hot-path baseline (GOMAXPROCS=%d, %d trace windows)\n\n",
		r.GoMaxProcs, r.TraceWindows)
	out += formatTable([]string{"op", "ns/op", "ops"}, rows)
	out += fmt.Sprintf("\ntrace scoring speedup: AE %.2fx, LSTM %.2fx (parallel vs sequential)\n",
		r.SpeedupAE, r.SpeedupLSTM)
	return out
}
