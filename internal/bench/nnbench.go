package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/nn"
)

// This file produces the NN performance baseline (BENCH_nn.json): wall-
// clock micro-measurements of the MobiWatch scoring and training hot
// paths, emitted machine-readable so future changes can be compared
// against the committed numbers (`xsec-bench -nn`).

// NNBenchEntry is one measured operation.
type NNBenchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// NNBenchResult is the machine-readable baseline. Trace speedups compare
// the worker-pool trace-scoring path against the sequential one on this
// machine; they approach 1.0 on a single core and scale with GOMAXPROCS.
// Batch speedups compare the batched GEMM inference engine (per-window
// ns at the given precision) against the scalar float64 window scores —
// a per-core number, independent of GOMAXPROCS.
type NNBenchResult struct {
	GoMaxProcs   int            `json:"gomaxprocs"`
	NumCPU       int            `json:"num_cpu"`
	SIMD         string         `json:"simd"`
	TraceWindows int            `json:"trace_windows"`
	BatchWindows int            `json:"batch_windows"`
	Entries      []NNBenchEntry `json:"entries"`
	SpeedupAE    float64        `json:"trace_ae_speedup"`
	SpeedupLSTM  float64        `json:"trace_lstm_speedup"`

	BatchSpeedupAE   float64 `json:"ae_batch_f32_speedup"`
	BatchSpeedupLSTM float64 `json:"lstm_batch_f32_speedup"`
	QuantSpeedupAE   float64 `json:"ae_batch_i8_speedup"`
	QuantSpeedupLSTM float64 `json:"lstm_batch_i8_speedup"`
}

// measure times f until at least minTime has elapsed and returns the
// per-op cost, warming up with one untimed call first.
func measure(minTime time.Duration, f func()) NNBenchEntry {
	f()
	var ops int
	var elapsed time.Duration
	batch := 1
	for elapsed < minTime {
		start := time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		elapsed += time.Since(start)
		ops += batch
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return NNBenchEntry{NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops), Ops: ops}
}

// batchN is the window-batch size the batched-inference entries score
// per GEMM call, matching the xApp fast path's default flush size order
// of magnitude.
const batchN = 32

// RunNNBench builds the cached experiment environment and measures the
// NN hot paths. Smoke mode shrinks the measurement windows so CI can
// exercise every entry in seconds; its numbers are noisier and not
// meant to be committed as the baseline.
func RunNNBench(cfg Config, smoke bool) (*NNBenchResult, error) {
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	models := env.Models
	vecs := feature.Vectorize(env.Mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	winsL, nexts := feature.WindowsLSTM(vecs, models.Window)
	if len(wins) == 0 || len(winsL) == 0 {
		return nil, fmt.Errorf("bench: mixed trace produced no windows")
	}

	res := &NNBenchResult{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		SIMD:         nn.SIMD(),
		TraceWindows: len(wins),
		BatchWindows: batchN,
	}
	minTime := 200 * time.Millisecond
	if smoke {
		minTime = 20 * time.Millisecond
	}
	add := func(name string, minT time.Duration, f func()) NNBenchEntry {
		e := measure(minT, f)
		e.Name = name
		res.Entries = append(res.Entries, e)
		return e
	}

	scratch := models.NewScoreScratch()
	i := 0
	aeScalar := add("ae_window_score", minTime, func() {
		models.ScoreAEWindowWith(scratch, wins[i%len(wins)])
		i++
	})
	j := 0
	lstmScalar := add("lstm_window_score", minTime, func() {
		models.LSTM.ScoreWith(scratch.LSTM, winsL[j%len(winsL)], nexts[j%len(winsL)])
		j++
	})

	// Batched fast-path inference: one tiled GEMM per layer across a
	// batchN-window tensor with float32 or int8 weights (internal/nn).
	// Entries are normalized to ns per window so they compare directly
	// against the scalar rows above; the *_speedup fields carry the
	// ratio.
	recDim := models.RecordDim()
	eng32 := models.Engines(nn.Float32)
	eng8 := models.Engines(nn.Int8)
	batchScores := make([]float32, batchN)
	addPerWindow := func(name string, f func()) NNBenchEntry {
		e := measure(minTime, f)
		e.NsPerOp /= batchN
		e.Name = name
		res.Entries = append(res.Entries, e)
		return e
	}

	xbAE := make([]float32, 0, batchN*len(wins[0]))
	for m := 0; m < batchN; m++ {
		for _, v := range wins[m%len(wins)] {
			xbAE = append(xbAE, float32(v))
		}
	}
	aeScratch32, aeScratch8 := eng32.AE.NewBatchScratch(), eng8.AE.NewBatchScratch()
	aeF32 := addPerWindow("ae_batch_f32", func() {
		eng32.AE.ScoreBatch(aeScratch32, xbAE, batchN, recDim, batchScores)
	})
	aeI8 := addPerWindow("ae_batch_i8", func() {
		eng8.AE.ScoreBatch(aeScratch8, xbAE, batchN, recDim, batchScores)
	})

	// LSTM batch tensor: window-major, then timestep-major (timestep t
	// of window m at xb[(m*T+t)*recDim:]).
	T := models.Window
	xbL := make([]float32, 0, batchN*T*recDim)
	tgtL := make([]float32, 0, batchN*recDim)
	for m := 0; m < batchN; m++ {
		for _, vec := range winsL[m%len(winsL)] {
			for _, v := range vec {
				xbL = append(xbL, float32(v))
			}
		}
		for _, v := range nexts[m%len(winsL)] {
			tgtL = append(tgtL, float32(v))
		}
	}
	lstmScratch32, lstmScratch8 := eng32.LSTM.NewBatchScratch(), eng8.LSTM.NewBatchScratch()
	lstmF32 := addPerWindow("lstm_batch_f32", func() {
		eng32.LSTM.ScoreBatch(lstmScratch32, xbL, tgtL, batchN, T, batchScores)
	})
	lstmI8 := addPerWindow("lstm_batch_i8", func() {
		eng8.LSTM.ScoreBatch(lstmScratch8, xbL, tgtL, batchN, T, batchScores)
	})
	res.BatchSpeedupAE = aeScalar.NsPerOp / aeF32.NsPerOp
	res.QuantSpeedupAE = aeScalar.NsPerOp / aeI8.NsPerOp
	res.BatchSpeedupLSTM = lstmScalar.NsPerOp / lstmF32.NsPerOp
	res.QuantSpeedupLSTM = lstmScalar.NsPerOp / lstmI8.NsPerOp

	aeSeq := add("trace_ae_sequential", minTime, func() {
		models.ScoreTraceAEParallel(env.Mixed.Trace, 1)
	})
	aePar := add("trace_ae_parallel", minTime, func() {
		models.ScoreTraceAEParallel(env.Mixed.Trace, 0)
	})
	lstmSeq := add("trace_lstm_sequential", minTime, func() {
		models.ScoreTraceLSTMParallel(env.Mixed.Trace, 1)
	})
	lstmPar := add("trace_lstm_parallel", minTime, func() {
		models.ScoreTraceLSTMParallel(env.Mixed.Trace, 0)
	})
	res.SpeedupAE = aeSeq.NsPerOp / aePar.NsPerOp
	res.SpeedupLSTM = lstmSeq.NsPerOp / lstmPar.NsPerOp

	// One training epoch, sequential vs data-parallel, on the benign
	// window set the models were fitted to.
	trainWins := feature.WindowsAE(feature.Vectorize(env.Benign, models.Vocab), models.Window)
	dim := len(trainWins[0])
	add("ae_train_epoch_sequential", minTime, func() {
		ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(trainWins, nn.TrainConfig{Epochs: 1, Seed: 2, Workers: 1}); err != nil {
			panic(err)
		}
	})
	add("ae_train_epoch_parallel", minTime, func() {
		ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(trainWins, nn.TrainConfig{Epochs: 1, Seed: 2}); err != nil {
			panic(err)
		}
	})
	return res, nil
}

// JSON renders the baseline for BENCH_nn.json.
func (r *NNBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the baseline as an aligned table.
func (r *NNBenchResult) Format() string {
	rows := make([][]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		rows = append(rows, []string{e.Name, fmt.Sprintf("%.0f", e.NsPerOp), fmt.Sprintf("%d", e.Ops)})
	}
	out := fmt.Sprintf("NN hot-path baseline (GOMAXPROCS=%d, simd=%s, %d trace windows)\n\n",
		r.GoMaxProcs, r.SIMD, r.TraceWindows)
	out += formatTable([]string{"op", "ns/op", "ops"}, rows)
	out += fmt.Sprintf("\ntrace scoring speedup: AE %.2fx, LSTM %.2fx (parallel vs sequential)\n",
		r.SpeedupAE, r.SpeedupLSTM)
	out += fmt.Sprintf("batched inference speedup per window vs scalar float64 (batch=%d):\n", r.BatchWindows)
	out += fmt.Sprintf("  AE   f32 %.1fx, i8 %.1fx\n", r.BatchSpeedupAE, r.QuantSpeedupAE)
	out += fmt.Sprintf("  LSTM f32 %.1fx, i8 %.1fx\n", r.BatchSpeedupLSTM, r.QuantSpeedupLSTM)
	return out
}
