package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// This file produces the provenance baseline (BENCH_prov.json): the
// ledger's overhead on the MobiWatch scoring hot path — digesting a
// feature window plus recording the event, benign (coalesced,
// allocation-free) vs. flagged — and the latency of reconstructing a
// persisted chain from the SDL (`xsec-bench -prov`).

// ProvBenchEntry is one measured operation.
type ProvBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Ops         int     `json:"ops"`
}

// ProvBenchResult is the machine-readable baseline.
type ProvBenchResult struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	WindowDim  int              `json:"window_dim"`
	Entries    []ProvBenchEntry `json:"entries"`
	// Dropped counts events lost to writer backpressure during the
	// recording measurements (the hot path never blocks on the ledger).
	Dropped uint64 `json:"dropped"`
	// Chain-reconstruction latency (SDL prefix scan + JSON decode),
	// sampled over persisted chains.
	ReconChains    int     `json:"recon_chains"`
	ReconEvents    int     `json:"recon_events_per_chain"`
	ReconP50Micros float64 `json:"recon_p50_us"`
	ReconP90Micros float64 `json:"recon_p90_us"`
	ReconP99Micros float64 `json:"recon_p99_us"`
}

// allocsPerRun reports the mean heap allocations per call of f. It
// deliberately avoids importing testing into non-test code; background
// goroutines (the ledger writer) share the process-wide counter, so a
// steady-state writer that allocates shows up here — which is exactly
// what the baseline must prove does not happen on the benign path.
func allocsPerRun(runs int, f func()) float64 {
	f() // warm up: interning, map inserts, first appends
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// RunProvBench measures the provenance ledger against realistic feature
// windows from the cached experiment environment.
func RunProvBench(cfg Config) (*ProvBenchResult, error) {
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	models := env.Models
	vecs := feature.Vectorize(env.Mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	if len(wins) == 0 {
		return nil, fmt.Errorf("bench: mixed trace produced no windows")
	}

	res := &ProvBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		WindowDim:  len(wins[0]),
	}
	const minTime = 200 * time.Millisecond
	add := func(name string, f func()) {
		e := measure(minTime, f)
		res.Entries = append(res.Entries, ProvBenchEntry{
			Name:        name,
			NsPerOp:     e.NsPerOp,
			AllocsPerOp: allocsPerRun(10000, f),
			Ops:         e.Ops,
		})
	}

	// Memory-only ledger, exactly what the scoring path pays when the
	// window is benign: digest + fixed-size struct send, coalesced by
	// the writer into one event per chain — zero allocations end to end.
	ledger := prov.New(prov.Options{})
	defer ledger.Close()
	chain := prov.ChainID{Node: "gnb-001", SN: 1}
	i := 0
	add("record_benign_window", func() {
		w := wins[i%len(wins)]
		i++
		ledger.Record(prov.Event{
			Chain:     chain,
			Kind:      prov.KindWindow,
			SeqFirst:  uint64(i),
			SeqLast:   uint64(i + models.Window),
			Digest:    prov.DigestFloats(w),
			Model:     "autoencoder",
			Score:     0.001,
			Threshold: models.AEThreshold,
		})
	})

	// Flagged windows append (no coalescing) and fan out across chains,
	// the worst case for the writer's chain map.
	j := 0
	add("record_flagged_window", func() {
		w := wins[j%len(wins)]
		j++
		ledger.Record(prov.Event{
			Chain:     prov.ChainID{Node: "gnb-001", SN: uint64(j)},
			Kind:      prov.KindWindow,
			SeqFirst:  uint64(j),
			SeqLast:   uint64(j + models.Window),
			Digest:    prov.DigestFloats(w),
			Model:     "autoencoder",
			Score:     9.9,
			Threshold: models.AEThreshold,
			Flagged:   true,
		})
	})

	k := 0
	add("digest_window_only", func() {
		_ = prov.DigestFloats(wins[k%len(wins)])
		k++
	})
	ledger.Flush()
	res.Dropped = ledger.Dropped()

	// Chain reconstruction: persist realistic chains to an SDL, then
	// sample ReadChain.
	const chains, eventsPerChain = 64, 8
	store := sdl.New()
	persisted := prov.New(prov.Options{Store: store})
	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	for c := 1; c <= chains; c++ {
		id := prov.ChainID{Node: "gnb-001", SN: uint64(c)}
		for e := 0; e < eventsPerChain; e++ {
			persisted.Record(prov.Event{
				Chain:    id,
				Kind:     prov.Kind(e % 7),
				At:       base.Add(time.Duration(e) * time.Millisecond),
				SeqFirst: uint64(e * 10),
				SeqLast:  uint64(e*10 + 9),
				Digest:   prov.DigestFloats(wins[e%len(wins)]),
				Model:    "autoencoder",
				Score:    0.5,
				Flagged:  e%7 == 3,
				Label:    "routed",
			})
		}
	}
	persisted.Flush()
	persisted.Close()

	const samples = 2000
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		id := prov.ChainID{Node: "gnb-001", SN: uint64(s%chains + 1)}
		start := time.Now()
		if _, err := prov.ReadChain(store, id); err != nil {
			return nil, err
		}
		durs = append(durs, float64(time.Since(start).Nanoseconds())/1e3)
	}
	sort.Float64s(durs)
	quant := func(q float64) float64 {
		idx := int(q * float64(len(durs)-1))
		return durs[idx]
	}
	res.ReconChains = chains
	res.ReconEvents = eventsPerChain
	res.ReconP50Micros = quant(0.50)
	res.ReconP90Micros = quant(0.90)
	res.ReconP99Micros = quant(0.99)
	return res, nil
}

// JSON renders the baseline for BENCH_prov.json.
func (r *ProvBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the baseline as an aligned table.
func (r *ProvBenchResult) Format() string {
	rows := make([][]string, 0, len(r.Entries)+3)
	for _, e := range r.Entries {
		rows = append(rows, []string{e.Name, fmt.Sprintf("%.0f", e.NsPerOp),
			fmt.Sprintf("%.2f", e.AllocsPerOp), fmt.Sprintf("%d", e.Ops)})
	}
	out := fmt.Sprintf("Provenance ledger baseline (GOMAXPROCS=%d, window dim %d)\n\n",
		r.GoMaxProcs, r.WindowDim)
	out += formatTable([]string{"op", "ns/op", "allocs/op", "ops"}, rows)
	out += fmt.Sprintf("\nchain reconstruction (%d chains × %d events): p50 %.1f µs, p90 %.1f µs, p99 %.1f µs\n",
		r.ReconChains, r.ReconEvents, r.ReconP50Micros, r.ReconP90Micros, r.ReconP99Micros)
	out += fmt.Sprintf("events dropped under bench load: %d\n", r.Dropped)
	return out
}
