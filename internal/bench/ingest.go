package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// This file produces the ingest-path baseline (BENCH_ingest.json,
// `xsec-bench -ingest`): throughput and latency of the telemetry path
// from gNB-side indication encode, through E2AP decode and dispatch, to
// per-record SDL persistence — the tier upstream of NN scoring. Two
// modes run over identical record streams in the same process:
//
//   - baseline: the pre-scaling stack — allocating header/message/E2AP
//     encode per indication, allocating E2AP decode, a single dispatch
//     queue, fmt-rendered SDL keys, and copying single-shard SDL writes.
//   - scaled: the current stack — reused encoders and AppendEncode (zero
//     emit allocations), DecodeInto with a reused Message, UE-keyed
//     shard queues, manually rendered keys, batch-decoding into a reused
//     record slice, and owned-value writes to the lock-striped SDL.
//
// The speedup is per-op cost, so it holds on one core; extra cores widen
// it by letting shard queues and SDL stripes actually run in parallel.

// IngestOptions configures the ingest benchmark.
type IngestOptions struct {
	// GNBCounts are the simulated fleet sizes (default 1, 4, 16).
	GNBCounts []int
	// IndicationsPerGNB is the workload per simulated gNB (default
	// 20000; Smoke reduces it).
	IndicationsPerGNB int
	// RecordsPerIndication is the batch size each indication carries
	// (default 4, a typical per-UE chunk under the agent's flush policy).
	RecordsPerIndication int
	// UEs is the number of UE contexts cycled per gNB (default 8).
	UEs int
	// SDLShards and DispatchShards size the scaled mode's partitions
	// (defaults: the package defaults, 16 and 4).
	SDLShards, DispatchShards int
	// Retention bounds how many telemetry keys each gNB keeps live in
	// the SDL (default 4096): persisted keys wrap modulo this count,
	// modeling the TTL-bounded retention of a production store so both
	// modes measure steady-state insert cost rather than unbounded map
	// growth.
	Retention int
	// Repetitions runs each mode × fleet-size cell several times and
	// keeps the fastest run (default 3; 1 under Smoke), damping GC and
	// scheduler noise.
	Repetitions int
	// Smoke shrinks the workload so CI can exercise the path quickly.
	Smoke bool
}

func (o *IngestOptions) defaults() {
	if len(o.GNBCounts) == 0 {
		o.GNBCounts = []int{1, 4, 16}
	}
	if o.IndicationsPerGNB == 0 {
		o.IndicationsPerGNB = 20000
	}
	if o.Smoke {
		o.IndicationsPerGNB = 500
		o.GNBCounts = []int{1, 4}
	}
	if o.RecordsPerIndication == 0 {
		o.RecordsPerIndication = 4
	}
	if o.UEs == 0 {
		o.UEs = 8
	}
	if o.SDLShards == 0 {
		o.SDLShards = sdl.DefaultShards
	}
	if o.DispatchShards == 0 {
		o.DispatchShards = 4
	}
	if o.Retention == 0 {
		o.Retention = 4096
	}
	if o.Repetitions == 0 {
		o.Repetitions = 3
		if o.Smoke {
			o.Repetitions = 1
		}
	}
}

// IngestRun is one measured mode × fleet-size combination.
type IngestRun struct {
	Mode              string  `json:"mode"`
	GNBs              int     `json:"gnbs"`
	Indications       uint64  `json:"indications"`
	Records           uint64  `json:"records"`
	Seconds           float64 `json:"seconds"`
	IndicationsPerSec float64 `json:"indications_per_sec"`
	RecordsPerSec     float64 `json:"records_per_sec"`
	AllocsPerInd      float64 `json:"allocs_per_indication"`
	P50LatencyUs      float64 `json:"p50_latency_us"`
	P99LatencyUs      float64 `json:"p99_latency_us"`
}

// IngestResult is the machine-readable baseline for BENCH_ingest.json.
type IngestResult struct {
	GoMaxProcs           int         `json:"gomaxprocs"`
	NumCPU               int         `json:"num_cpu"`
	Smoke                bool        `json:"smoke"`
	RecordsPerIndication int         `json:"records_per_indication"`
	IndicationsPerGNB    int         `json:"indications_per_gnb"`
	SDLShards            int         `json:"sdl_shards"`
	DispatchShards       int         `json:"dispatch_shards"`
	Runs                 []IngestRun `json:"runs"`
	// SpeedupSingleGNB is scaled / baseline indications-per-second at
	// one gNB — the headline per-op win of the ingest rebuild.
	SpeedupSingleGNB float64 `json:"speedup_single_gnb"`
}

// ingestRecords builds one gNB's record template; emitters restamp Seq,
// UEID, and Timestamp per batch so every indication is distinct.
func ingestRecords(n int) mobiflow.Trace {
	tr := make(mobiflow.Trace, n)
	for i := range tr {
		tr[i] = mobiflow.Record{
			Msg:   "RRCSetupRequest",
			Layer: mobiflow.LayerRRC,
			RNTI:  0x4601,
		}
	}
	return tr
}

// dispatchItem models the routed indication handed across the dispatch
// queue (the bench drains it synchronously; queue cost, not queueing
// delay, is what the per-op comparison needs).
type dispatchItem struct {
	ue     uint64
	header []byte
	msg    []byte
}

// runIngestBaseline drives the pre-scaling ingest stack.
func runIngestBaseline(opts IngestOptions, gnbs int) IngestRun {
	store := sdl.NewWithOptions(sdl.Options{Shards: 1})
	queue := make(chan dispatchItem, 1)
	var queueMu sync.Mutex // single routing path: one queue, one lock

	latencies := make([][]int64, gnbs)
	var wg sync.WaitGroup
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for g := 0; g < gnbs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("gnb-%03d", g)
			batch := ingestRecords(opts.RecordsPerIndication)
			lats := make([]int64, 0, opts.IndicationsPerGNB)
			var seq uint64
			for i := 0; i < opts.IndicationsPerGNB; i++ {
				t0 := time.Now()
				ue := uint64(i%opts.UEs) + 1
				for r := range batch {
					seq++
					batch[r].Seq, batch[r].UEID, batch[r].Timestamp = seq, ue, t0
				}
				// Emit: every stage allocates its output.
				hdr := asn1lite.Marshal(&e2sm.IndicationHeader{
					NodeID: node, CollectionStart: t0, BatchSeq: uint64(i + 1), UEID: ue,
				})
				payload := mobiflow.EncodeTrace(batch)
				frame := e2ap.Encode(&e2ap.Message{
					Type:              e2ap.TypeIndication,
					RequestID:         e2ap.RequestID{Requestor: 1, Instance: 1},
					ActionID:          1,
					IndicationSN:      uint64(i + 1),
					IndicationHeader:  hdr,
					IndicationMessage: payload,
				})
				// E2 Termination: allocating decode, single routing queue.
				m, err := e2ap.Decode(frame)
				if err != nil {
					panic(err)
				}
				queueMu.Lock()
				queue <- dispatchItem{ue: ue, header: m.IndicationHeader, msg: m.IndicationMessage}
				it := <-queue
				queueMu.Unlock()
				// xApp ingest: fresh trace slice, fmt keys, re-encoded
				// records, copying writes.
				tr, err := mobiflow.DecodeTrace(it.msg)
				if err != nil {
					panic(err)
				}
				for r := range tr {
					store.Set("mobiflow",
						fmt.Sprintf("%s/%020d", node, tr[r].Seq%uint64(opts.Retention)),
						mobiflow.Encode(&tr[r]))
				}
				lats = append(lats, time.Since(t0).Nanoseconds())
			}
			latencies[g] = lats
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return summarizeIngest("baseline", opts, gnbs, elapsed, ms1.Mallocs-ms0.Mallocs, latencies)
}

// runIngestScaled drives the rebuilt ingest stack.
func runIngestScaled(opts IngestOptions, gnbs int) IngestRun {
	store := sdl.NewWithOptions(sdl.Options{Shards: opts.SDLShards})
	queues := make([]chan dispatchItem, opts.DispatchShards)
	locks := make([]sync.Mutex, opts.DispatchShards)
	for i := range queues {
		queues[i] = make(chan dispatchItem, 1)
	}

	latencies := make([][]int64, gnbs)
	var wg sync.WaitGroup
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for g := 0; g < gnbs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("gnb-%03d", g)
			batch := ingestRecords(opts.RecordsPerIndication)
			lats := make([]int64, 0, opts.IndicationsPerGNB)
			// Long-lived per-stream state, as in the agent and the
			// sharded xApp workers.
			var hdrEnc, msgEnc asn1lite.Encoder
			var frame, keyBuf []byte
			var msg e2ap.Message
			var tr mobiflow.Trace
			var seq uint64
			for i := 0; i < opts.IndicationsPerGNB; i++ {
				t0 := time.Now()
				ue := uint64(i%opts.UEs) + 1
				for r := range batch {
					seq++
					batch[r].Seq, batch[r].UEID, batch[r].Timestamp = seq, ue, t0
				}
				// Emit: reused encoders, zero-alloc E2AP marshal.
				hdr := e2sm.IndicationHeader{
					NodeID: node, CollectionStart: t0, BatchSeq: uint64(i + 1), UEID: ue,
				}
				hdrEnc.Reset()
				hdr.MarshalTLV(&hdrEnc)
				msgEnc.Reset()
				mobiflow.AppendTrace(&msgEnc, batch)
				frame = e2ap.AppendEncode(frame[:0], &e2ap.Message{
					Type:              e2ap.TypeIndication,
					RequestID:         e2ap.RequestID{Requestor: 1, Instance: 1},
					ActionID:          1,
					IndicationSN:      uint64(i + 1),
					IndicationHeader:  hdrEnc.Bytes(),
					IndicationMessage: msgEnc.Bytes(),
				})
				// E2 Termination: decode into a reused Message, pick the
				// shard from the header without materializing it.
				if err := e2ap.DecodeInto(frame, &msg); err != nil {
					panic(err)
				}
				shard := e2sm.PeekIndicationUE(msg.IndicationHeader) % uint64(opts.DispatchShards)
				locks[shard].Lock()
				queues[shard] <- dispatchItem{ue: ue, header: msg.IndicationHeader, msg: msg.IndicationMessage}
				it := <-queues[shard]
				locks[shard].Unlock()
				// xApp ingest: one walk over the batch decodes each
				// record into the reused slice for scoring AND persists
				// its received wire form directly — no re-encode, an
				// owned copy handed to the striped store.
				var dec asn1lite.Decoder
				dec.Reset(it.msg)
				tr = tr[:0]
				for dec.Next() {
					if dec.Tag() != 1 {
						continue
					}
					raw := dec.RawValue()
					tr = append(tr, mobiflow.Record{})
					rec := &tr[len(tr)-1]
					if err := asn1lite.Unmarshal(raw, rec); err != nil {
						panic(err)
					}
					keyBuf = appendIngestKey(keyBuf[:0], node, rec.Seq%uint64(opts.Retention))
					store.SetOwned("mobiflow", string(keyBuf), append([]byte(nil), raw...))
				}
				if err := dec.Err(); err != nil {
					panic(err)
				}
				lats = append(lats, time.Since(t0).Nanoseconds())
			}
			latencies[g] = lats
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return summarizeIngest("scaled", opts, gnbs, elapsed, ms1.Mallocs-ms0.Mallocs, latencies)
}

// appendIngestKey renders "node/%020d" without fmt.
func appendIngestKey(buf []byte, node string, seq uint64) []byte {
	buf = append(buf, node...)
	buf = append(buf, '/')
	var digits [20]byte
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i] = byte('0' + seq%10)
		seq /= 10
	}
	return append(buf, digits[:]...)
}

func summarizeIngest(mode string, opts IngestOptions, gnbs int, elapsed time.Duration, mallocs uint64, latencies [][]int64) IngestRun {
	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e3
	}
	inds := uint64(gnbs * opts.IndicationsPerGNB)
	recs := inds * uint64(opts.RecordsPerIndication)
	sec := elapsed.Seconds()
	return IngestRun{
		Mode:              mode,
		GNBs:              gnbs,
		Indications:       inds,
		Records:           recs,
		Seconds:           sec,
		IndicationsPerSec: float64(inds) / sec,
		RecordsPerSec:     float64(recs) / sec,
		AllocsPerInd:      float64(mallocs) / float64(inds),
		P50LatencyUs:      pct(0.50),
		P99LatencyUs:      pct(0.99),
	}
}

// RunIngestBench measures both ingest stacks across the configured fleet
// sizes in one process, so the speedup is a same-run comparison.
func RunIngestBench(opts IngestOptions) (*IngestResult, error) {
	opts.defaults()
	res := &IngestResult{
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		Smoke:                opts.Smoke,
		RecordsPerIndication: opts.RecordsPerIndication,
		IndicationsPerGNB:    opts.IndicationsPerGNB,
		SDLShards:            opts.SDLShards,
		DispatchShards:       opts.DispatchShards,
	}
	best := func(run func(IngestOptions, int) IngestRun, n int) IngestRun {
		out := run(opts, n)
		for i := 1; i < opts.Repetitions; i++ {
			if r := run(opts, n); r.IndicationsPerSec > out.IndicationsPerSec {
				out = r
			}
		}
		return out
	}
	var base1, scaled1 float64
	for _, n := range opts.GNBCounts {
		b := best(runIngestBaseline, n)
		s := best(runIngestScaled, n)
		res.Runs = append(res.Runs, b, s)
		if n == 1 {
			base1, scaled1 = b.IndicationsPerSec, s.IndicationsPerSec
		}
	}
	if base1 > 0 {
		res.SpeedupSingleGNB = scaled1 / base1
	}
	return res, nil
}

// JSON renders the baseline for BENCH_ingest.json.
func (r *IngestResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the baseline as an aligned table.
func (r *IngestResult) Format() string {
	rows := make([][]string, 0, len(r.Runs))
	for _, run := range r.Runs {
		rows = append(rows, []string{
			run.Mode,
			fmt.Sprintf("%d", run.GNBs),
			fmt.Sprintf("%.0f", run.IndicationsPerSec),
			fmt.Sprintf("%.0f", run.RecordsPerSec),
			fmt.Sprintf("%.1f", run.AllocsPerInd),
			fmt.Sprintf("%.1f", run.P50LatencyUs),
			fmt.Sprintf("%.1f", run.P99LatencyUs),
		})
	}
	out := fmt.Sprintf("Ingest-path baseline (GOMAXPROCS=%d, %d records/indication)\n\n",
		r.GoMaxProcs, r.RecordsPerIndication)
	out += formatTable([]string{"mode", "gnbs", "ind/s", "rec/s", "allocs/ind", "p50 µs", "p99 µs"}, rows)
	out += fmt.Sprintf("\nsingle-gNB speedup (scaled vs baseline): %.2fx\n", r.SpeedupSingleGNB)
	return out
}
