package f1ap

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeInitialULRRCTransfer, DUUEID: 1, RNTI: 0x4601, RRCContainer: []byte{1, 2, 3}},
		{Type: TypeULRRCTransfer, DUUEID: 1, CUUEID: 2, RRCContainer: []byte{4}},
		{Type: TypeDLRRCTransfer, DUUEID: 1, CUUEID: 2, RRCContainer: []byte{5, 6}},
		{Type: TypeUEContextSetupRequest, CUUEID: 2},
		{Type: TypeUEContextSetupResponse, DUUEID: 1, CUUEID: 2},
		{Type: TypeUEContextReleaseCommand, CUUEID: 2, Cause: "normal"},
		{Type: TypeUEContextReleaseComplete, DUUEID: 1, CUUEID: 2},
	}
	for _, in := range msgs {
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s mismatch:\n got %#v\nwant %#v", in.Type, out, in)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(Encode(&Message{Type: MessageType(99)})); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestTypeNames(t *testing.T) {
	if TypeInitialULRRCTransfer.String() != "InitialULRRCMessageTransfer" {
		t.Errorf("got %q", TypeInitialULRRCTransfer.String())
	}
	if MessageType(88).String() != "MessageType(88)" {
		t.Errorf("got %q", MessageType(88).String())
	}
}

func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool { Decode(data); return true }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
