// Package f1ap implements the F1 Application Protocol subset (3GPP
// TS 38.473) connecting the O-DU and O-CU in the simulated gNB: RRC
// message transfer (initial/UL/DL) and UE context management. The 6G-XSec
// paper's dataset pipeline "instruments the F1AP and NGAP interfaces to
// obtain pcap streams, which are further parsed into MOBIFLOW security
// telemetry" (§4); internal/pcaplite captures these PDUs and
// internal/dataset parses them back.
package f1ap

import (
	"errors"
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
)

// MessageType discriminates F1AP procedure PDUs.
type MessageType uint8

// F1AP message types.
const (
	TypeInvalid MessageType = iota
	TypeInitialULRRCTransfer
	TypeULRRCTransfer
	TypeDLRRCTransfer
	TypeUEContextSetupRequest
	TypeUEContextSetupResponse
	TypeUEContextReleaseCommand
	TypeUEContextReleaseComplete
	typeCount
)

var typeNames = [...]string{
	"Invalid",
	"InitialULRRCMessageTransfer",
	"ULRRCMessageTransfer",
	"DLRRCMessageTransfer",
	"UEContextSetupRequest",
	"UEContextSetupResponse",
	"UEContextReleaseCommand",
	"UEContextReleaseComplete",
}

// String returns the TS 38.473 procedure name.
func (t MessageType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Valid reports whether t is defined.
func (t MessageType) Valid() bool { return t > TypeInvalid && t < typeCount }

// Message is one F1AP PDU.
type Message struct {
	Type MessageType
	// DUUEID and CUUEID are the gNB-DU / gNB-CU UE F1AP IDs.
	DUUEID uint64
	CUUEID uint64
	// RNTI is the C-RNTI (carried in initial transfer).
	RNTI cell.RNTI
	// RRCContainer is the encoded RRC PDU for transfer messages.
	RRCContainer []byte
	// Cause annotates release commands.
	Cause string
}

// TLV tags.
const (
	tagType   = 1
	tagDUUEID = 2
	tagCUUEID = 3
	tagRNTI   = 4
	tagRRC    = 5
	tagCause  = 6
)

// MarshalTLV implements asn1lite.Marshaler.
func (m *Message) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagType, uint64(m.Type))
	e.PutUint(tagDUUEID, m.DUUEID)
	e.PutUint(tagCUUEID, m.CUUEID)
	e.PutUint(tagRNTI, uint64(m.RNTI))
	if m.RRCContainer != nil {
		e.PutBytes(tagRRC, m.RRCContainer)
	}
	if m.Cause != "" {
		e.PutString(tagCause, m.Cause)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Message) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case tagType:
			var v uint64
			v, err = d.Uint()
			m.Type = MessageType(v)
		case tagDUUEID:
			m.DUUEID, err = d.Uint()
		case tagCUUEID:
			m.CUUEID, err = d.Uint()
		case tagRNTI:
			var v uint64
			v, err = d.Uint()
			m.RNTI = cell.RNTI(v)
		case tagRRC:
			m.RRCContainer, err = d.Bytes()
		case tagCause:
			m.Cause, err = d.String()
		}
		if err != nil {
			return fmt.Errorf("f1ap: tag %d: %w", d.Tag(), err)
		}
	}
	return d.Err()
}

// ErrBadMessage reports a structurally invalid F1AP PDU.
var ErrBadMessage = errors.New("f1ap: invalid message")

// Encode serializes a message.
func Encode(m *Message) []byte { return asn1lite.Marshal(m) }

// Decode parses and validates a message.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := asn1lite.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("type %d: %w", m.Type, ErrBadMessage)
	}
	return &m, nil
}
