package mobiwatch

import (
	"fmt"
	"sort"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/prov"
)

// This file is the xApp's UE-state migration surface: checkpointing one
// UE's sliding-window history out of a running worker and restoring it
// into another instance's worker, so a UE handing over between RICs
// keeps its detection continuity (an attacker must not be able to
// launder anomaly-window history by forcing handovers). The federation
// layer (internal/fed) drives these; the worker goroutine itself
// executes every operation through its control channel, so no scoring
// state is ever touched concurrently.

// UESnapshot is one UE's portable detection state: the telemetry records
// the owning worker still holds for it, plus the provenance chain of the
// last indication scored for the UE (Node/LastSN) so the new owner can
// join its chain to the old one with a migration link.
type UESnapshot struct {
	// UE is the CU-local UE context ID.
	UE uint64
	// Node and LastSN name the provenance chain of the UE's last scored
	// indication on the old owner — the chain the migration "out" event
	// lives on. For a UE that was itself restored and never scored
	// again, these forward the original source chain, so multi-hop
	// migrations stay joined to where the history actually lives.
	Node   string
	LastSN uint64
	// Records is the UE's trailing telemetry (window + context history).
	Records mobiflow.Trace
}

// Snapshot TLV tags.
const (
	snapTagUE      = 1
	snapTagNode    = 2
	snapTagLastSN  = 3
	snapTagRecords = 4
)

// MarshalTLV implements asn1lite.Marshaler.
func (s *UESnapshot) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(snapTagUE, s.UE)
	e.PutString(snapTagNode, s.Node)
	e.PutUint(snapTagLastSN, s.LastSN)
	e.PutBytes(snapTagRecords, mobiflow.EncodeTrace(s.Records))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (s *UESnapshot) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case snapTagUE:
			s.UE, err = d.Uint()
		case snapTagNode:
			s.Node, err = d.String()
		case snapTagLastSN:
			s.LastSN, err = d.Uint()
		case snapTagRecords:
			var raw []byte
			raw, err = d.Bytes()
			if err == nil {
				s.Records, err = mobiflow.DecodeTrace(raw)
			}
		}
		if err != nil {
			return fmt.Errorf("mobiwatch: snapshot tag %d: %w", d.Tag(), err)
		}
	}
	return d.Err()
}

// EncodeSnapshot serializes a snapshot for bus transport.
func EncodeSnapshot(s *UESnapshot) []byte { return asn1lite.Marshal(s) }

// DecodeSnapshot parses a snapshot from its wire form.
func DecodeSnapshot(data []byte) (*UESnapshot, error) {
	var s UESnapshot
	if err := asn1lite.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// chainMark remembers which provenance chain last scored a UE, so a
// checkpoint can name the chain its migration "out" event belongs on.
type chainMark struct {
	node string
	sn   uint64
}

// joinInfo is a pending migration join: state restored for a UE whose
// first post-restore indication has not arrived yet. When it does, the
// worker records the migration "in" event on that indication's chain.
type joinInfo struct {
	src      prov.ChainID
	seqFirst uint64
	seqLast  uint64
}

// ctrl operations, executed by the owning worker goroutine.
type ctrlKind uint8

const (
	ctrlCheckpoint ctrlKind = iota
	ctrlRestore
	ctrlForget
	ctrlList
)

type ctrlOp struct {
	kind  ctrlKind
	ue    uint64
	snap  *UESnapshot
	reply chan ctrlReply
}

type ctrlReply struct {
	snap *UESnapshot
	ues  []uint64
	ok   bool
}

// handleCtrl executes one migration operation on the worker's own state.
func (w *worker) handleCtrl(op ctrlOp) {
	var r ctrlReply
	switch op.kind {
	case ctrlCheckpoint:
		r.snap, r.ok = w.checkpoint(op.ue)
	case ctrlRestore:
		w.restore(op.snap)
		r.ok = true
	case ctrlForget:
		delete(w.ueLast, op.ue)
		delete(w.joins, op.ue)
		r.ok = true
	case ctrlList:
		r.ues = make([]uint64, 0, len(w.ueLast))
		for ue := range w.ueLast {
			r.ues = append(r.ues, ue)
		}
		r.ok = true
	}
	op.reply <- r
}

// checkpoint copies the UE's detection state out of the worker. The
// records stay in the worker's history (they age out on their own);
// ForgetUE drops the ownership bookkeeping once the snapshot has safely
// reached the new owner — checkpoint → publish → forget, so a failed
// handoff loses nothing.
func (w *worker) checkpoint(ue uint64) (*UESnapshot, bool) {
	mark, ok := w.ueLast[ue]
	if !ok {
		return nil, false
	}
	return &UESnapshot{
		UE:      ue,
		Node:    mark.node,
		LastSN:  mark.sn,
		Records: w.recent.FilterUE(ue), // FilterUE copies
	}, true
}

// restore replays a snapshot's records through the worker's feature
// encoder, rebuilding the sliding-window history (and the encoder's
// identity state for the UE) without enqueueing or scoring any window —
// the first window scored for the UE is the one its first post-restore
// indication completes, and it sees the pre-migration history.
func (w *worker) restore(snap *UESnapshot) {
	for _, rec := range snap.Records {
		w.recent = append(w.recent, rec)
		if w.fast != nil {
			w.fast.rows.Push(w.encoder, rec)
		} else {
			w.vecs = append(w.vecs, w.encoder.Encode(rec))
		}
		w.trimHistory()
	}
	// The restored-but-not-yet-scored UE stays attributed to its source
	// chain: a further checkpoint before any new indication forwards the
	// original chain, keeping multi-hop migrations joined.
	w.ueLast[snap.UE] = chainMark{node: snap.Node, sn: snap.LastSN}
	w.joins[snap.UE] = joinInfo{
		src:      prov.ChainID{Node: snap.Node, SN: snap.LastSN},
		seqFirst: snap.Records.FirstSeq(),
		seqLast:  snap.Records.LastSeq(),
	}
}

// exec routes one control operation to the worker owning the UE's shard
// (the same "ue mod shards" partition the dispatch layer uses) and waits
// for the worker to execute it. Fails once the runtime has stopped.
func (rt *Runtime) exec(op ctrlOp) (ctrlReply, error) {
	w := rt.workers[op.ue%uint64(len(rt.workers))]
	select {
	case w.ctrl <- op:
	case <-rt.done:
		return ctrlReply{}, fmt.Errorf("mobiwatch: runtime stopped")
	}
	select {
	case r := <-op.reply:
		return r, nil
	case <-rt.done:
		return ctrlReply{}, fmt.Errorf("mobiwatch: runtime stopped")
	}
}

// CheckpointUE serializes one UE's detection state for migration. The
// state remains live on this instance until ForgetUE.
func (rt *Runtime) CheckpointUE(ue uint64) (*UESnapshot, error) {
	r, err := rt.exec(ctrlOp{kind: ctrlCheckpoint, ue: ue, reply: make(chan ctrlReply, 1)})
	if err != nil {
		return nil, err
	}
	if !r.ok {
		return nil, fmt.Errorf("mobiwatch: no state for UE %d", ue)
	}
	return r.snap, nil
}

// RestoreUE installs a migrated UE's detection state before its first
// indication arrives on this instance.
func (rt *Runtime) RestoreUE(snap *UESnapshot) error {
	_, err := rt.exec(ctrlOp{kind: ctrlRestore, ue: snap.UE, snap: snap, reply: make(chan ctrlReply, 1)})
	return err
}

// ForgetUE drops the ownership bookkeeping for a UE whose state has
// been handed to another instance. Residual records age out of the
// window history on their own.
func (rt *Runtime) ForgetUE(ue uint64) error {
	_, err := rt.exec(ctrlOp{kind: ctrlForget, ue: ue, reply: make(chan ctrlReply, 1)})
	return err
}

// UEs lists every UE context this instance holds detection state for,
// sorted.
func (rt *Runtime) UEs() []uint64 {
	var out []uint64
	for i := range rt.workers {
		r, err := rt.exec(ctrlOp{kind: ctrlList, ue: uint64(i), reply: make(chan ctrlReply, 1)})
		if err != nil {
			break
		}
		out = append(out, r.ues...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
