package mobiwatch

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// liveEnv wires a real gNB to a RIC platform over an E2 pipe.
func liveEnv(t *testing.T) (*ric.Platform, *gnb.GNB, *corenet.AMF) {
	t.Helper()
	store := sdl.New()
	platform := ric.NewPlatform(store)
	amf := corenet.NewAMF(31)
	g, err := gnb.New(gnb.Config{NodeID: "gnb-live", AMF: amf})
	if err != nil {
		t.Fatal(err)
	}
	ricEnd, nodeEnd := e2ap.Pipe()
	go platform.AttachNode(ricEnd)
	go g.ServeE2(nodeEnd)

	deadline := time.Now().Add(2 * time.Second)
	for len(platform.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("E2 setup did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(platform.Close)
	return platform, g, amf
}

func TestXAppOnlineDetection(t *testing.T) {
	_, _, models := fixtures(t)
	platform, g, amf := liveEnv(t)

	x, err := platform.RegisterXApp("mobiwatch")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(x, models, RunOptions{NodeID: "gnb-live", ReportPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Benign traffic first: no alerts expected.
	var k [nas.KeySize]byte
	copy(k[:], "live-test-key-01")
	amf.AddSubscriber(corenet.Subscriber{SUPI: "imsi-001010000000077", K: k})
	benignUE := ue.New("imsi-001010000000077", k, ue.OAIUE, 3)
	benignUE.Profile.RetransProb = 0
	if _, err := benignUE.RunSession(g); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	benignAlerts := len(rt.Alerts())

	// An attack: alerts must flow.
	attacker := ue.New("imsi-001010000000077", k, ue.OAIUE, 4)
	attacker.Profile.RetransProb = 0
	if _, err := attacker.RunBTSDoS(g, 8); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	got := benignAlerts
	var sample Alert
	for time.Now().Before(deadline) && got == benignAlerts {
		select {
		case a := <-rt.Alerts():
			sample = a
			got++
		case <-time.After(10 * time.Millisecond):
		}
	}
	if got == benignAlerts {
		t.Fatalf("no alert raised for BTS DoS (stats: %d records, %d windows)",
			rt.Stats().RecordsSeen.Load(), rt.Stats().WindowsScored.Load())
	}
	if sample.NodeID != "gnb-live" || len(sample.Window) == 0 || sample.Score <= sample.Threshold {
		t.Errorf("alert = %+v", sample)
	}
	if len(sample.Context) < len(sample.Window) {
		t.Error("alert context smaller than window")
	}

	// Telemetry landed in the SDL.
	if n := x.SDL().Len("mobiflow"); n == 0 {
		t.Error("no telemetry persisted to SDL")
	}

	if err := rt.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Channel closes after stop.
	for range rt.Alerts() {
	}
}

func TestXAppRunValidation(t *testing.T) {
	_, _, models := fixtures(t)
	platform, _, _ := liveEnv(t)
	x, err := platform.RegisterXApp("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(x, models, RunOptions{}); err == nil {
		t.Error("missing NodeID accepted")
	}
	if _, err := Run(x, models, RunOptions{NodeID: "nowhere"}); err == nil {
		t.Error("unknown node accepted")
	}
	_ = cell.RNTI(0)
}
