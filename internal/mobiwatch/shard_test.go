package mobiwatch

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/ue"
)

// TestXAppShardedDetection runs the online xApp with several UE-sharded
// scoring workers and asserts the pipeline still detects an attack while
// threshold policy updates race the scoring loops (the -race build is the
// point of this test as much as the assertions).
func TestXAppShardedDetection(t *testing.T) {
	_, _, models := fixtures(t)
	platform, g, _ := liveEnv(t)

	x, err := platform.RegisterXApp("mobiwatch-sharded")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(x, models, RunOptions{
		NodeID:       "gnb-live",
		ReportPeriod: 5 * time.Millisecond,
		Shards:       4,
		ShardBuffer:  64,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent A1 threshold updates while workers score.
	stopPolicy := make(chan struct{})
	policyDone := make(chan struct{})
	go func() {
		defer close(policyDone)
		for {
			select {
			case <-stopPolicy:
				return
			default:
				if err := rt.SetThresholdPercentile(99); err != nil {
					t.Error(err)
					return
				}
				rt.Thresholds()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	var k [nas.KeySize]byte
	copy(k[:], "shard-test-key-1")
	attacker := ue.New("imsi-001010000000099", k, ue.OAIUE, 11)
	attacker.Profile.RetransProb = 0
	if _, err := attacker.RunBTSDoS(g, 8); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var got int
	for time.Now().Before(deadline) && got == 0 {
		select {
		case a := <-rt.Alerts():
			if a.NodeID != "gnb-live" || len(a.Window) == 0 {
				t.Errorf("alert = %+v", a)
			}
			got++
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stopPolicy)
	<-policyDone
	if got == 0 {
		t.Fatalf("sharded pipeline raised no alert for BTS DoS (stats: %d records, %d windows)",
			rt.Stats().RecordsSeen.Load(), rt.Stats().WindowsScored.Load())
	}

	// Telemetry landed in the SDL via the owned-value fast path.
	if n := x.SDL().Len("mobiflow"); n == 0 {
		t.Error("no telemetry persisted to SDL")
	}

	if err := rt.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for range rt.Alerts() {
	}
}
