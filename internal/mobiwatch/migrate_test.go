package mobiwatch

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

func TestSnapshotRoundtrip(t *testing.T) {
	benign, _, _ := fixtures(t)
	snap := &UESnapshot{UE: 7, Node: "gnb-a", LastSN: 42, Records: benign[:5].FilterUE(benign[0].UEID)}
	if len(snap.Records) == 0 {
		snap.Records = benign[:5]
	}
	got, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got.UE != snap.UE || got.Node != snap.Node || got.LastSN != snap.LastSN ||
		len(got.Records) != len(snap.Records) {
		t.Fatalf("roundtrip = %+v, want %+v", got, snap)
	}
	for i := range got.Records {
		if got.Records[i].Seq != snap.Records[i].Seq || got.Records[i].Msg != snap.Records[i].Msg {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], snap.Records[i])
		}
	}
	if _, err := DecodeSnapshot([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("garbage snapshot decoded")
	}
}

// TestCheckpointRestoreUE exercises the worker-side migration surface:
// checkpoint copies one UE's state out of a live sharded runtime, forget
// drops the ownership, restore re-installs it, and the UE's next
// indication records the migration "in" link on its provenance chain.
func TestCheckpointRestoreUE(t *testing.T) {
	_, _, models := fixtures(t)

	store := sdl.New()
	ledger := prov.New(prov.Options{Store: store})
	defer prov.SetActive(prov.SetActive(ledger)).Close()

	platform, g, _ := liveEnv(t)
	x, err := platform.RegisterXApp("mobiwatch-migrate")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(x, models, RunOptions{
		NodeID:       "gnb-live",
		ReportPeriod: 5 * time.Millisecond,
		Shards:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		rt.Stop()
		for range rt.Alerts() {
		}
	}()

	var k [nas.KeySize]byte
	copy(k[:], "migrate-test-key")
	attacker := ue.New("imsi-001010000000088", k, ue.OAIUE, 17)
	attacker.Profile.RetransProb = 0
	if _, err := attacker.RunBTSDoS(g, 6); err != nil {
		t.Fatal(err)
	}

	// Telemetry delivery is asynchronous; wait for UE state to appear.
	var ues []uint64
	deadline := time.Now().Add(5 * time.Second)
	for len(ues) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no UE state materialized")
		}
		time.Sleep(5 * time.Millisecond)
		ues = rt.UEs()
	}
	target := ues[0]

	snap, err := rt.CheckpointUE(target)
	if err != nil {
		t.Fatal(err)
	}
	if snap.UE != target || snap.Node != "gnb-live" || len(snap.Records) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, rec := range snap.Records {
		if rec.UEID != target {
			t.Fatalf("snapshot leaked record of UE %d: %+v", rec.UEID, rec)
		}
	}
	if _, err := rt.CheckpointUE(999999); err == nil {
		t.Fatal("checkpoint of unknown UE succeeded")
	}

	if err := rt.ForgetUE(target); err != nil {
		t.Fatal(err)
	}
	for _, ue := range rt.UEs() {
		if ue == target {
			t.Fatal("forgotten UE still listed")
		}
	}
	if _, err := rt.CheckpointUE(target); err == nil {
		t.Fatal("checkpoint of forgotten UE succeeded")
	}

	// Restore through the wire form, as the federation bus would.
	wire, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RestoreUE(wire); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ue := range rt.UEs() {
		if ue == target {
			found = true
		}
	}
	if !found {
		t.Fatal("restored UE not listed")
	}

	// A restored-but-never-rescored UE forwards the original source
	// chain when checkpointed again, so a multi-hop migration still
	// joins to where the scoring history actually lives. (The migration
	// "in" event on the next indication's chain is asserted end to end
	// by the federation tests, which control UE identity.)
	hop, err := rt.CheckpointUE(target)
	if err != nil {
		t.Fatal(err)
	}
	if hop.Node != snap.Node || hop.LastSN != snap.LastSN {
		t.Fatalf("double-hop checkpoint names chain %s/%d, want %s/%d",
			hop.Node, hop.LastSN, snap.Node, snap.LastSN)
	}
	if len(hop.Records) < len(snap.Records) {
		t.Fatalf("double-hop checkpoint lost records: %d < %d", len(hop.Records), len(snap.Records))
	}
}
