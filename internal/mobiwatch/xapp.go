package mobiwatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nn"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ric"
)

// Detection-pipeline observability. Scoring runs per telemetry batch on
// the streaming hot path, so every handle is interned up front and each
// observation is a single atomic update.
var (
	obsRecords = obs.NewCounter("xsec_mobiwatch_records_total",
		"Telemetry records ingested by MobiWatch.")
	obsWindows = obs.NewCounter("xsec_mobiwatch_windows_scored_total",
		"Sliding windows scored across both detectors.")
	obsAnomalies = obs.NewCounterVec("xsec_mobiwatch_anomalies_total",
		"Windows whose score exceeded the detection threshold, by model.", "model")
	obsAnomalyAE   = obsAnomalies.With(string(ModelAE))
	obsAnomalyLSTM = obsAnomalies.With(string(ModelLSTM))
	obsAlerts      = obs.NewCounterVec("xsec_mobiwatch_alerts_total",
		"Alerts offered to the analyzer stream, by outcome.", "outcome")
	obsAlertsRaised  = obsAlerts.With("raised")
	obsAlertsDropped = obsAlerts.With("dropped")
	obsBadBatches    = obs.NewCounter("xsec_mobiwatch_bad_batches_total",
		"E2 indication payloads that failed to decode.")
	obsQueueDepth = obs.NewGaugeVec("xsec_mobiwatch_alert_queue_depth",
		"Pending alerts in the xApp alert buffer, by node.", "node")
	obsScoreSeconds = obs.NewHistogram("xsec_mobiwatch_score_seconds",
		"Streaming-inference latency per telemetry batch.", obs.ExpBuckets(1e-6, 4, 12))
	obsFlagSeconds = obs.NewHistogram("xsec_mobiwatch_flag_seconds",
		"E2 indication arrival to anomaly flag.", obs.DefLatencyBuckets)
)

// Alert is one flagged anomalous window, handed to the LLM Analyzer.
type Alert struct {
	// NodeID is the reporting gNB.
	NodeID string
	// Window is the anomalous record window (size N).
	Window mobiflow.Trace
	// Context is the surrounding telemetry (window plus preceding
	// records) the analyzer passes to the LLM (§3.3: "the sequence plus
	// its context window").
	Context mobiflow.Trace
	// Score, Threshold, and Model describe the detection.
	Score     float64
	Threshold float64
	Model     ModelName
	// At is when the detection fired.
	At time.Time
	// ReceivedAt is when the E2 indication that completed the flagged
	// window arrived at the RIC (zero for offline replays). The
	// analyzer uses it for the end-to-end detection-latency histogram.
	ReceivedAt time.Time
	// IndicationSN is that indication's sequence number; together with
	// NodeID it keys the pipeline trace spans.
	IndicationSN uint64
}

// RunOptions configures the online xApp.
type RunOptions struct {
	// NodeID is the E2 node to subscribe to.
	NodeID string
	// ReportPeriod is the E2SM event-trigger period (default 50 ms,
	// inside the near-RT control loop).
	ReportPeriod time.Duration
	// ContextRecords is how much preceding telemetry each alert carries
	// (default 12).
	ContextRecords int
	// ContextSpan bounds the context temporally: records older than
	// this (by telemetry timestamp) relative to the window start are
	// excluded, so stale incidents do not leak into a new analysis
	// (default 1 s).
	ContextSpan time.Duration
	// AlertBuffer bounds the alert channel (default 64).
	AlertBuffer int
	// Shards is the number of parallel scoring workers. Indications are
	// partitioned by the UE ID in their headers (per-UE batches are the
	// gNB agent's default), so records of one UE are always scored in
	// order by one worker while different UEs proceed in parallel. The
	// default 1 keeps the classic single sequential pipeline.
	Shards int
	// ShardBuffer bounds each shard's dispatch queue (default 256).
	ShardBuffer int
	// Inference selects the scoring engine: "f32" (default) and "i8"
	// run the batched reduced-precision fast path, "f64" the scalar
	// float64 reference path.
	Inference string
	// BatchWindows is the fast path's batch size: pending windows are
	// scored together once this many accumulate (default 16).
	BatchWindows int
	// BatchAge bounds how long a pending window may wait before being
	// scored when traffic is slow (default 2 ms — negligible against the
	// 50 ms E2 report period).
	BatchAge time.Duration
	// ScoreLatency, when set, additionally receives every per-batch
	// scoring latency observation. Colocated federated instances share
	// the process-global histogram, so each instance passes its own
	// private histogram here to report instance-attributed latency to
	// the fleet collector.
	ScoreLatency *obs.Histogram
	// Clock is used for alert timestamps (default time.Now).
	Clock func() time.Time
}

func (o *RunOptions) defaults() {
	if o.ReportPeriod == 0 {
		o.ReportPeriod = 50 * time.Millisecond
	}
	if o.ContextRecords == 0 {
		o.ContextRecords = 12
	}
	if o.AlertBuffer == 0 {
		o.AlertBuffer = 64
	}
	if o.ContextSpan == 0 {
		o.ContextSpan = time.Second
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ShardBuffer <= 0 {
		o.ShardBuffer = 256
	}
	if o.BatchWindows <= 0 {
		o.BatchWindows = 16
	}
	if o.BatchAge <= 0 {
		o.BatchAge = 2 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// Stats counts xApp activity.
type Stats struct {
	RecordsSeen    atomic.Uint64
	WindowsScored  atomic.Uint64
	AlertsRaised   atomic.Uint64
	AlertsDropped  atomic.Uint64
	BatchesHandled atomic.Uint64
}

// Runtime is a running MobiWatch instance.
type Runtime struct {
	models *Models
	opts   RunOptions
	xapp   *ric.XApp
	sub    *ric.ShardedSubscription

	alerts chan Alert
	stats  Stats

	// thMu guards the shared model thresholds: workers hold the read
	// side per batch, SetThresholdPercentile the write side.
	thMu       sync.RWMutex
	queueDepth *obs.Gauge
	workers    []*worker
	done       chan struct{}
}

// worker is one scoring pipeline. Each worker owns a shard of the
// indication stream (all indications of a UE land on the same worker, in
// order) and its own sliding-window state, so shards score concurrently
// without sharing anything but the read-mostly models.
type worker struct {
	rt      *Runtime
	encoder *feature.Encoder
	recent  mobiflow.Trace // trailing records for window + context
	vecs    [][]float64    // encoded counterparts of recent (scalar path)
	scratch *ScoreScratch  // inference workspace (scalar path)
	flat    []float64      // reusable window-flattening buffer (scalar path)
	fast    *fastState     // batched reduced-precision path (nil = scalar)
	keyBuf  []byte         // reusable SDL key-rendering buffer
	batchAt time.Time      // RIC arrival time of the batch being ingested
	batchSN uint64         // its E2 indication sequence number

	// Migration state (migrate.go): the control channel delivers
	// checkpoint/restore operations into the worker goroutine; ueLast
	// tracks each UE's latest provenance chain; joins holds restored
	// UEs awaiting their first post-migration indication.
	ctrl   chan ctrlOp
	ueLast map[uint64]chainMark
	joins  map[uint64]joinInfo
}

// Run subscribes MobiWatch to a node's MOBIFLOW telemetry and starts
// online inference. The returned runtime's Alerts channel streams flagged
// windows until Stop. With RunOptions.Shards > 1 the indication stream is
// UE-sharded and scored by that many parallel workers.
func Run(x *ric.XApp, models *Models, opts RunOptions) (*Runtime, error) {
	opts.defaults()
	if opts.NodeID == "" {
		return nil, fmt.Errorf("mobiwatch: RunOptions.NodeID is required")
	}
	prec, err := nn.ParsePrecision(opts.Inference)
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: %w", err)
	}
	trigger := asn1lite.Marshal(&e2sm.EventTrigger{Period: opts.ReportPeriod})
	action := asn1lite.Marshal(&e2sm.ActionDefinition{AllUEs: true})
	sub, err := x.SubscribeSharded(opts.NodeID, e2sm.MobiFlowRANFunctionID, trigger,
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport, Definition: action}},
		ric.ShardedOptions{
			Shards: opts.Shards,
			Buffer: opts.ShardBuffer,
			Key:    func(ind ric.Indication) uint64 { return e2sm.PeekIndicationUE(ind.Header) },
		})
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: subscribing to %s: %w", opts.NodeID, err)
	}
	rt := &Runtime{
		models:     models,
		opts:       opts,
		xapp:       x,
		sub:        sub,
		alerts:     make(chan Alert, opts.AlertBuffer),
		queueDepth: obsQueueDepth.With(opts.NodeID),
		done:       make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < sub.Shards(); i++ {
		w := &worker{
			rt:      rt,
			encoder: feature.NewEncoder(models.Vocab),
			ctrl:    make(chan ctrlOp),
			ueLast:  make(map[uint64]chainMark),
			joins:   make(map[uint64]joinInfo),
		}
		rt.workers = append(rt.workers, w)
		if prec == nn.Float64 {
			w.scratch = models.NewScoreScratch()
		} else {
			w.fast = newFastState(models, prec)
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			w.loop(sub.C(shard))
		}(i)
	}
	go func() {
		wg.Wait()
		close(rt.alerts)
		close(rt.done)
	}()
	return rt, nil
}

// Alerts streams flagged windows. Closed when the runtime stops.
func (rt *Runtime) Alerts() <-chan Alert { return rt.alerts }

// Stats returns live counters.
func (rt *Runtime) Stats() *Stats { return &rt.stats }

// Stop deletes the subscription and closes the alert stream.
func (rt *Runtime) Stop() error {
	err := rt.sub.Delete()
	<-rt.done
	return err
}

// SetThresholdPercentile applies an A1 threshold policy at runtime: both
// detection thresholds are re-fitted at the given percentile of the
// stored training-score distribution, without retraining or redeploying.
func (rt *Runtime) SetThresholdPercentile(pct float64) error {
	rt.thMu.Lock()
	defer rt.thMu.Unlock()
	return rt.models.SetPercentile(pct)
}

// Thresholds reports the active detection thresholds.
func (rt *Runtime) Thresholds() (ae, lstm float64) {
	rt.thMu.RLock()
	defer rt.thMu.RUnlock()
	return rt.models.AEThreshold, rt.models.LSTMThreshold
}

func (w *worker) loop(c <-chan ric.Indication) {
	rt := w.rt
	// The fast path accumulates windows into a batch tensor; an age
	// ticker bounds how long a pending window can wait for company when
	// traffic is slow.
	var tick <-chan time.Time
	if w.fast != nil {
		ticker := time.NewTicker(rt.opts.BatchAge)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case ind, ok := <-c:
			if !ok {
				if w.fast != nil && w.fast.pending() > 0 {
					rt.thMu.RLock()
					w.flushLocked(rt.opts.NodeID)
					rt.thMu.RUnlock()
					rt.queueDepth.Set(float64(len(rt.alerts)))
				}
				return
			}
			span := obs.StartSpan(obs.IndicationKey(ind.NodeID, ind.SN), "mobiwatch.score")
			msg, err := e2sm.DecodeIndicationMessage(ind.Message)
			if err != nil {
				obsBadBatches.Inc()
				obs.L().Warn("mobiwatch: undecodable indication payload",
					"node", ind.NodeID, "sn", ind.SN, "err", err)
				span.End()
				continue
			}
			rt.stats.BatchesHandled.Add(1)
			start := time.Now()
			rt.thMu.RLock()
			w.ingest(ind, msg.Records)
			rt.thMu.RUnlock()
			elapsed := time.Since(start).Nanoseconds()
			obsScoreSeconds.ObserveSeconds(elapsed)
			if rt.opts.ScoreLatency != nil {
				rt.opts.ScoreLatency.ObserveSeconds(elapsed)
			}
			span.End()
			rt.queueDepth.Set(float64(len(rt.alerts)))
		case op := <-w.ctrl:
			w.handleCtrl(op)
		case <-tick:
			if w.fast.pending() == 0 {
				continue
			}
			start := time.Now()
			rt.thMu.RLock()
			w.flushLocked(rt.opts.NodeID)
			rt.thMu.RUnlock()
			elapsed := time.Since(start).Nanoseconds()
			obsScoreSeconds.ObserveSeconds(elapsed)
			if rt.opts.ScoreLatency != nil {
				rt.opts.ScoreLatency.ObserveSeconds(elapsed)
			}
			rt.queueDepth.Set(float64(len(rt.alerts)))
		}
	}
}

// persistKey renders "nodeID/%020d" into buf without fmt, so the SDL
// persist path pays one allocation (the key string) per record.
func persistKey(buf []byte, nodeID string, seq uint64) []byte {
	buf = append(buf[:0], nodeID...)
	buf = append(buf, '/')
	var digits [20]byte
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i] = byte('0' + seq%10)
		seq /= 10
	}
	return append(buf, digits[:]...)
}

// ingest runs streaming inference over a telemetry batch. The caller
// holds the runtime's threshold read-lock.
func (w *worker) ingest(ind ric.Indication, batch mobiflow.Trace) {
	rt := w.rt
	nodeID := ind.NodeID
	w.batchAt, w.batchSN = ind.ReceivedAt, ind.SN
	if ue := e2sm.PeekIndicationUE(ind.Header); ue != 0 {
		w.ueLast[ue] = chainMark{node: nodeID, sn: ind.SN}
		if j, ok := w.joins[ue]; ok {
			// First indication for a migrated-in UE: join this chain to
			// the one its history arrived from. The windows this batch
			// completes land on the same chain, so an auditor sees
			// restored history feeding the first post-migration score.
			delete(w.joins, ue)
			prov.Record(prov.Event{
				Chain:    prov.ChainID{Node: nodeID, SN: ind.SN},
				Kind:     prov.KindMigration,
				At:       w.batchAt,
				Label:    "in",
				UEID:     ue,
				SeqFirst: j.seqFirst,
				SeqLast:  j.seqLast,
				Note:     j.src.String(),
			})
		}
	}
	N := rt.models.Window
	store := rt.xapp.SDL()
	for _, rec := range batch {
		rt.stats.RecordsSeen.Add(1)
		obsRecords.Inc()
		// Persist telemetry in the SDL for other services (§3.1). The
		// encoded buffer is single-use, so the store takes ownership
		// instead of copying.
		w.keyBuf = persistKey(w.keyBuf, nodeID, rec.Seq)
		store.SetOwned("mobiflow", string(w.keyBuf), mobiflow.Encode(&rec))

		w.recent = append(w.recent, rec)
		if w.fast != nil {
			// Fast path: encode straight into the row buffer and enqueue
			// the completed window(s) into the batch tensor; scoring
			// happens when the batch fills (below) or ages out (loop).
			w.fast.rows.Push(w.encoder, rec)
			if w.fast.rows.Len() >= N {
				w.enqueueLatest()
			}
			if w.fast.pending() >= rt.opts.BatchWindows {
				w.flushLocked(nodeID)
			}
		} else {
			w.vecs = append(w.vecs, w.encoder.Encode(rec))
			if len(w.vecs) >= N {
				w.scoreLatest(nodeID)
			}
		}
		w.trimHistory()
	}
}

// trimHistory drops records no longer needed for context windows. On the
// fast path, records referenced by still-pending windows (and their
// context) are kept until the batch flushes.
func (w *worker) trimHistory() {
	rt := w.rt
	max := rt.opts.ContextRecords + rt.models.Window + 1
	drop := len(w.recent) - max
	if drop <= 0 {
		return
	}
	if w.fast != nil {
		if lim := w.fast.minPendingStart(len(w.recent)) - rt.opts.ContextRecords; drop > lim {
			drop = lim
		}
		if drop <= 0 {
			return
		}
		w.recent = w.recent[drop:]
		w.fast.shift(drop)
		return
	}
	w.recent = w.recent[drop:]
	w.vecs = w.vecs[drop:]
}

// scoreLatest evaluates the newest AE window and, when possible, the
// newest LSTM pair.
func (w *worker) scoreLatest(nodeID string) {
	rt := w.rt
	N := rt.models.Window
	n := len(w.vecs)

	// Autoencoder: flatten the last N vectors into the reusable buffer,
	// then score through the worker's workspace — the streaming hot
	// path performs no per-window allocation.
	flat := w.flat[:0]
	for _, v := range w.vecs[n-N:] {
		flat = append(flat, v...)
	}
	w.flat = flat
	rt.stats.WindowsScored.Add(1)
	obsWindows.Inc()
	s := rt.models.ScoreAEWindowWith(w.scratch, flat)
	// Every scored window joins the evidence chain; prov.Record is a
	// struct channel send, so the benign path stays allocation-free
	// (consecutive benign windows coalesce writer-side).
	prov.Record(prov.Event{
		Chain:     prov.ChainID{Node: nodeID, SN: w.batchSN},
		Kind:      prov.KindWindow,
		At:        w.batchAt,
		SeqFirst:  w.recent[len(w.recent)-N].Seq,
		SeqLast:   w.recent[len(w.recent)-1].Seq,
		Digest:    prov.DigestFloats(flat),
		Model:     string(ModelAE),
		Score:     s,
		Threshold: rt.models.AEThreshold,
		Flagged:   s > rt.models.AEThreshold,
	})
	if s > rt.models.AEThreshold {
		obsAnomalyAE.Inc()
		w.raise(nodeID, len(w.recent)-N, N, s, rt.models.AEThreshold, ModelAE, w.batchAt, w.batchSN)
	}

	// LSTM: previous N vectors predict the newest one.
	if n >= N+1 {
		window := w.vecs[n-N-1 : n-1]
		next := w.vecs[n-1]
		rt.stats.WindowsScored.Add(1)
		obsWindows.Inc()
		s := rt.models.LSTM.ScoreWith(w.scratch.LSTM, window, next)
		prov.Record(prov.Event{
			Chain:     prov.ChainID{Node: nodeID, SN: w.batchSN},
			Kind:      prov.KindWindow,
			At:        w.batchAt,
			SeqFirst:  w.recent[n-N-1].Seq,
			SeqLast:   w.recent[n-1].Seq,
			Digest:    prov.NewDigest().Vecs(window).Floats(next),
			Model:     string(ModelLSTM),
			Score:     s,
			Threshold: rt.models.LSTMThreshold,
			Flagged:   s > rt.models.LSTMThreshold,
		})
		if s > rt.models.LSTMThreshold {
			obsAnomalyLSTM.Inc()
			w.raise(nodeID, len(w.recent)-N-1, N+1, s, rt.models.LSTMThreshold, ModelLSTM, w.batchAt, w.batchSN)
		}
	}
}

// raise flags the window at w.recent[winStart : winStart+winLen]. at and
// sn identify the E2 indication that completed the window (the batched
// path raises windows that are no longer at the end of the history, so
// they travel with the window rather than with the worker).
func (w *worker) raise(nodeID string, winStart, winLen int, score, threshold float64, model ModelName, at time.Time, sn uint64) {
	rt := w.rt
	window := w.recent[winStart : winStart+winLen]
	ctxLen := rt.opts.ContextRecords
	start := winStart - ctxLen
	if start < 0 {
		start = 0
	}
	// Temporal bound: drop context records older than ContextSpan
	// before the window starts.
	windowStart := window[0].Timestamp
	for start < winStart &&
		windowStart.Sub(w.recent[start].Timestamp) > rt.opts.ContextSpan {
		start++
	}
	alert := Alert{
		NodeID:       nodeID,
		Window:       append(mobiflow.Trace(nil), window...),
		Context:      append(mobiflow.Trace(nil), w.recent[start:winStart+winLen]...),
		Score:        score,
		Threshold:    threshold,
		Model:        model,
		At:           rt.opts.Clock(),
		ReceivedAt:   at,
		IndicationSN: sn,
	}
	if !at.IsZero() {
		obsFlagSeconds.ObserveSeconds(time.Since(at).Nanoseconds())
	}
	disposition := "raised"
	select {
	case rt.alerts <- alert:
		rt.stats.AlertsRaised.Add(1)
		obsAlertsRaised.Inc()
	default:
		disposition = "dropped"
		rt.stats.AlertsDropped.Add(1)
		obsAlertsDropped.Inc()
		obs.L().Warn("mobiwatch: alert buffer full, alert dropped",
			"node", nodeID, "model", string(model))
	}
	prov.Record(prov.Event{
		Chain:     prov.ChainID{Node: nodeID, SN: sn},
		Kind:      prov.KindAlert,
		At:        alert.At,
		SeqFirst:  window[0].Seq,
		SeqLast:   window[len(window)-1].Seq,
		Digest:    prov.DigestRecords(window),
		Model:     string(model),
		Score:     score,
		Threshold: threshold,
		Flagged:   true,
		Label:     disposition,
	})
}
