package mobiwatch

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
)

// TestScoreTraceParallelMatchesSequential forces multi-worker pools
// (regardless of GOMAXPROCS) and requires bit-identical scores to the
// sequential path for both detectors.
func TestScoreTraceParallelMatchesSequential(t *testing.T) {
	_, mixed, models := fixtures(t)

	seqAE := models.ScoreTraceAEParallel(mixed.Trace, 1)
	seqLSTM := models.ScoreTraceLSTMParallel(mixed.Trace, 1)
	for _, workers := range []int{2, 4, 8} {
		parAE := models.ScoreTraceAEParallel(mixed.Trace, workers)
		if len(parAE) != len(seqAE) {
			t.Fatalf("AE: %d windows with %d workers, want %d", len(parAE), workers, len(seqAE))
		}
		for i := range seqAE {
			if parAE[i] != seqAE[i] {
				t.Fatalf("AE window %d with %d workers = %+v, sequential %+v", i, workers, parAE[i], seqAE[i])
			}
		}
		parLSTM := models.ScoreTraceLSTMParallel(mixed.Trace, workers)
		for i := range seqLSTM {
			if parLSTM[i] != seqLSTM[i] {
				t.Fatalf("LSTM window %d with %d workers = %+v, sequential %+v", i, workers, parLSTM[i], seqLSTM[i])
			}
		}
	}
}

// TestConcurrentBundleScoring scores one shared bundle from many
// goroutines, each with its own ScoreScratch — the xApp fleet shape.
// Under -race this proves the bundle is read-only during inference.
func TestConcurrentBundleScoring(t *testing.T) {
	_, mixed, models := fixtures(t)
	vecs := feature.Vectorize(mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	if len(wins) == 0 {
		t.Fatal("no windows")
	}
	want := make([]float64, len(wins))
	for i, w := range wins {
		want[i] = models.ScoreAEWindow(w)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := models.NewScoreScratch()
			for i, w := range wins {
				if got := models.ScoreAEWindowWith(s, w); got != want[i] {
					errs <- "concurrent AE score diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScoreWindowZeroAllocs proves steady-state window scoring through
// a scratch does not touch the heap.
func TestScoreWindowZeroAllocs(t *testing.T) {
	_, mixed, models := fixtures(t)
	vecs := feature.Vectorize(mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	winsL, nexts := feature.WindowsLSTM(vecs, models.Window)
	s := models.NewScoreScratch()
	if n := testing.AllocsPerRun(100, func() { models.ScoreAEWindowWith(s, wins[0]) }); n != 0 {
		t.Errorf("ScoreAEWindowWith allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { models.LSTM.ScoreWith(s.LSTM, winsL[0], nexts[0]) }); n != 0 {
		t.Errorf("LSTM.ScoreWith allocates %v/op, want 0", n)
	}
}

// goroutineID returns the "goroutine N" prefix of the caller's stack —
// enough to tell whether two calls ran on the same goroutine.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	if i := bytes.IndexByte(buf, '['); i > 0 {
		buf = buf[:i]
	}
	return string(bytes.TrimSpace(buf))
}

// TestForEachWindowInlineOnSingleCPU pins the BENCH_nn anomaly fix:
// with one schedulable CPU the scoring pool cannot overlap any work, so
// forEachWindow must run every window inline on the calling goroutine
// even when a multi-worker fan-out is requested.
func TestForEachWindowInlineOnSingleCPU(t *testing.T) {
	_, _, models := fixtures(t)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	caller := goroutineID()
	n := 2 * seqScoreCutoff // large enough that the pool path would engage
	var mu sync.Mutex
	seen := map[string]bool{}
	hits := 0
	models.forEachWindow(n, 8, func(s *ScoreScratch, i int) {
		mu.Lock()
		seen[goroutineID()] = true
		hits++
		mu.Unlock()
	})
	if hits != n {
		t.Fatalf("forEachWindow visited %d windows, want %d", hits, n)
	}
	if len(seen) != 1 || !seen[caller] {
		t.Errorf("with GOMAXPROCS=1 scoring ran on goroutines %v, want only caller %s", seen, caller)
	}

	// With more schedulable CPUs the requested fan-out must still engage
	// the pool: work moves off the calling goroutine.
	runtime.GOMAXPROCS(4)
	seen = map[string]bool{}
	models.forEachWindow(n, 8, func(s *ScoreScratch, i int) {
		mu.Lock()
		seen[goroutineID()] = true
		mu.Unlock()
	})
	if seen[caller] {
		t.Errorf("with GOMAXPROCS=4 and 8 workers, scoring still ran on the calling goroutine")
	}
}

// TestCalibrateMatchesPercentileThreshold cross-checks the sort-once
// calibration against the legacy per-percentile path.
func TestCalibrateMatchesPercentileThreshold(t *testing.T) {
	benign, _, models := fixtures(t)
	vecs := feature.Vectorize(benign, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	scores := make([]float64, len(wins))
	for i, w := range wins {
		scores[i] = models.ScoreAEWindow(w)
	}
	thr, quants := calibrate(scores, 99)
	if want := detect.PercentileThreshold(scores, 99); thr != want {
		t.Errorf("calibrate threshold = %g, PercentileThreshold = %g", thr, want)
	}
	if len(quants) != 101 {
		t.Fatalf("quantile table has %d entries, want 101", len(quants))
	}
	for p := 1; p <= 100; p++ {
		if want := detect.PercentileThreshold(scores, float64(p)); quants[p] != want {
			t.Errorf("quantile[%d] = %g, PercentileThreshold = %g", p, quants[p], want)
		}
	}
	// Calibration feeds SetPercentile: re-fitting at the stored
	// percentile must reproduce the fitted threshold.
	if models.AEThreshold != models.AEQuantiles[99] {
		t.Errorf("stored AE threshold %g != 99th quantile %g", models.AEThreshold, models.AEQuantiles[99])
	}
}
