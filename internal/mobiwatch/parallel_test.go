package mobiwatch

import (
	"sync"
	"testing"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
)

// TestScoreTraceParallelMatchesSequential forces multi-worker pools
// (regardless of GOMAXPROCS) and requires bit-identical scores to the
// sequential path for both detectors.
func TestScoreTraceParallelMatchesSequential(t *testing.T) {
	_, mixed, models := fixtures(t)

	seqAE := models.ScoreTraceAEParallel(mixed.Trace, 1)
	seqLSTM := models.ScoreTraceLSTMParallel(mixed.Trace, 1)
	for _, workers := range []int{2, 4, 8} {
		parAE := models.ScoreTraceAEParallel(mixed.Trace, workers)
		if len(parAE) != len(seqAE) {
			t.Fatalf("AE: %d windows with %d workers, want %d", len(parAE), workers, len(seqAE))
		}
		for i := range seqAE {
			if parAE[i] != seqAE[i] {
				t.Fatalf("AE window %d with %d workers = %+v, sequential %+v", i, workers, parAE[i], seqAE[i])
			}
		}
		parLSTM := models.ScoreTraceLSTMParallel(mixed.Trace, workers)
		for i := range seqLSTM {
			if parLSTM[i] != seqLSTM[i] {
				t.Fatalf("LSTM window %d with %d workers = %+v, sequential %+v", i, workers, parLSTM[i], seqLSTM[i])
			}
		}
	}
}

// TestConcurrentBundleScoring scores one shared bundle from many
// goroutines, each with its own ScoreScratch — the xApp fleet shape.
// Under -race this proves the bundle is read-only during inference.
func TestConcurrentBundleScoring(t *testing.T) {
	_, mixed, models := fixtures(t)
	vecs := feature.Vectorize(mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	if len(wins) == 0 {
		t.Fatal("no windows")
	}
	want := make([]float64, len(wins))
	for i, w := range wins {
		want[i] = models.ScoreAEWindow(w)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := models.NewScoreScratch()
			for i, w := range wins {
				if got := models.ScoreAEWindowWith(s, w); got != want[i] {
					errs <- "concurrent AE score diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScoreWindowZeroAllocs proves steady-state window scoring through
// a scratch does not touch the heap.
func TestScoreWindowZeroAllocs(t *testing.T) {
	_, mixed, models := fixtures(t)
	vecs := feature.Vectorize(mixed.Trace, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	winsL, nexts := feature.WindowsLSTM(vecs, models.Window)
	s := models.NewScoreScratch()
	if n := testing.AllocsPerRun(100, func() { models.ScoreAEWindowWith(s, wins[0]) }); n != 0 {
		t.Errorf("ScoreAEWindowWith allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { models.LSTM.ScoreWith(s.LSTM, winsL[0], nexts[0]) }); n != 0 {
		t.Errorf("LSTM.ScoreWith allocates %v/op, want 0", n)
	}
}

// TestCalibrateMatchesPercentileThreshold cross-checks the sort-once
// calibration against the legacy per-percentile path.
func TestCalibrateMatchesPercentileThreshold(t *testing.T) {
	benign, _, models := fixtures(t)
	vecs := feature.Vectorize(benign, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	scores := make([]float64, len(wins))
	for i, w := range wins {
		scores[i] = models.ScoreAEWindow(w)
	}
	thr, quants := calibrate(scores, 99)
	if want := detect.PercentileThreshold(scores, 99); thr != want {
		t.Errorf("calibrate threshold = %g, PercentileThreshold = %g", thr, want)
	}
	if len(quants) != 101 {
		t.Fatalf("quantile table has %d entries, want 101", len(quants))
	}
	for p := 1; p <= 100; p++ {
		if want := detect.PercentileThreshold(scores, float64(p)); quants[p] != want {
			t.Errorf("quantile[%d] = %g, PercentileThreshold = %g", p, quants[p], want)
		}
	}
	// Calibration feeds SetPercentile: re-fitting at the stored
	// percentile must reproduce the fitted threshold.
	if models.AEThreshold != models.AEQuantiles[99] {
		t.Errorf("stored AE threshold %g != 99th quantile %g", models.AEThreshold, models.AEQuantiles[99])
	}
}
