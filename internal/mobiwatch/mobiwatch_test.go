package mobiwatch

import (
	"sync"
	"testing"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiflow"
)

// Shared fixtures: training is the expensive part, so build once.
var (
	fixtureOnce   sync.Once
	fixtureBenign mobiflow.Trace
	fixtureMixed  *dataset.Labeled
	fixtureModels *Models
	fixtureErr    error
)

func fixtures(t *testing.T) (mobiflow.Trace, *dataset.Labeled, *Models) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureBenign, fixtureErr = dataset.GenerateBenign(dataset.BenignConfig{Sessions: 60, Fleet: 10, Seed: 21})
		if fixtureErr != nil {
			return
		}
		fixtureMixed, fixtureErr = dataset.GenerateMixed(dataset.MixedConfig{
			BenignConfig:       dataset.BenignConfig{Fleet: 8, Seed: 22},
			InstancesPerAttack: 1,
			BenignBetween:      2,
		})
		if fixtureErr != nil {
			return
		}
		fixtureModels, fixtureErr = Train(fixtureBenign, TrainOptions{Epochs: 20, Seed: 5})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureBenign, fixtureMixed, fixtureModels
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("empty trace accepted")
	}
	short := mobiflow.Trace{{Msg: "a"}, {Msg: "b"}}
	if _, err := Train(short, TrainOptions{Window: 4}); err == nil {
		t.Error("trace shorter than window accepted")
	}
}

func TestDetectionTable2Shape(t *testing.T) {
	_, mixed, models := fixtures(t)

	// Window-level metrics at the paper's 99th-percentile threshold.
	aeScores := models.ScoreTraceAE(mixed.Trace)
	labels := feature.WindowLabels(mixed.Malicious, models.Window)
	if len(aeScores) != len(labels) {
		t.Fatalf("scores %d vs labels %d", len(aeScores), len(labels))
	}
	pred := make([]bool, len(aeScores))
	for i, s := range aeScores {
		pred[i] = s.Anomalous
	}
	aeConf := detect.Evaluate(pred, labels)
	// Only the leading-edge windows (benign prefix + the first,
	// content-identical attack record) may be missed; recall stays
	// high. See EXPERIMENTS.md for the full threshold trade-off curve.
	if aeConf.Recall() < 0.85 {
		t.Errorf("AE recall = %.4f, want >= 0.85 (%s)", aeConf.Recall(), aeConf)
	}
	if aeConf.Precision() < 0.80 {
		t.Errorf("AE precision = %.4f suspiciously low (%s)", aeConf.Precision(), aeConf)
	}

	// LSTM window-level: the AE leads on F1, as in Table 2.
	lstmScores := models.ScoreTraceLSTM(mixed.Trace)
	lstmLabels := feature.WindowLabelsNext(mixed.Malicious, models.Window)
	predL := make([]bool, len(lstmScores))
	for i, s := range lstmScores {
		predL[i] = s.Anomalous
	}
	lstmConf := detect.Evaluate(predL, lstmLabels)
	if lstmConf.Recall() < 0.70 {
		t.Errorf("LSTM recall = %.4f, want >= 0.70 (%s)", lstmConf.Recall(), lstmConf)
	}

	// Event-level recall — the paper's headline "all attack sequences
	// classified as anomalous": every attack event must raise at least
	// one flagged window, for both models. No false negatives per
	// attack instance.
	for _, conf := range []struct {
		name   string
		scores []WindowScore
		span   int // records covered by window i: [i, i+span)
	}{
		{"AE", aeScores, models.Window},
		{"LSTM", lstmScores, models.Window + 1},
	} {
		for _, ev := range mixed.Events {
			ueSet := make(map[uint64]bool, len(ev.UEIDs))
			for _, id := range ev.UEIDs {
				ueSet[id] = true
			}
			detected := false
			for _, s := range conf.scores {
				if !s.Anomalous {
					continue
				}
				for j := s.Index; j < s.Index+conf.span && j < len(mixed.Trace); j++ {
					if ueSet[mixed.Trace[j].UEID] {
						detected = true
						break
					}
				}
				if detected {
					break
				}
			}
			if !detected {
				t.Errorf("%s: attack event %s (instance %d) raised no alert", conf.name, ev.Kind, ev.Instance)
			}
		}
	}

	// At the paper's benign-accuracy operating point (~93%), recall
	// approaches 100%: refit the threshold at the 93rd percentile and
	// re-evaluate — the Table 2 shape.
	benign := fixtureBenign
	vecs := feature.Vectorize(benign, models.Vocab)
	wins := feature.WindowsAE(vecs, models.Window)
	trainScores := make([]float64, len(wins))
	for i, w := range wins {
		trainScores[i] = models.ScoreAEWindow(w)
	}
	thr93 := detect.PercentileThreshold(trainScores, 93)
	for i, s := range aeScores {
		pred[i] = s.Score > thr93
	}
	conf93 := detect.Evaluate(pred, labels)
	if conf93.Recall() < 0.95 {
		t.Errorf("AE recall at 93rd-pct threshold = %.4f, want >= 0.95 (%s)", conf93.Recall(), conf93)
	}
}

func TestBenignAccuracyShape(t *testing.T) {
	benign, _, models := fixtures(t)
	// Held-out style check on the training distribution: the fraction
	// of benign windows below threshold must be high but imperfect
	// (the paper reports 93.23% / 91.15%).
	scores := models.ScoreTraceAE(benign)
	below := 0
	for _, s := range scores {
		if !s.Anomalous {
			below++
		}
	}
	acc := float64(below) / float64(len(scores))
	if acc < 0.90 {
		t.Errorf("benign AE accuracy = %.4f, want >= 0.90", acc)
	}
}

func TestPerAttackDetection(t *testing.T) {
	_, mixed, models := fixtures(t)
	scores := models.ScoreTraceAE(mixed.Trace)
	labels := feature.WindowLabels(mixed.Malicious, models.Window)

	// For every attack kind, at least one of its malicious windows is
	// flagged (no attack type is invisible).
	kindOf := func(widx int) int {
		// A window's kind: the first malicious record inside it.
		for j := widx; j < widx+models.Window; j++ {
			if mixed.Malicious[j] {
				return mixed.AttackOf[j]
			}
		}
		return -1
	}
	flagged := make(map[int]bool)
	missed := make(map[int]int)
	for i, s := range scores {
		if !labels[i] {
			continue
		}
		k := kindOf(i)
		if s.Anomalous {
			flagged[k] = true
		} else {
			missed[k]++
		}
	}
	for kind := 0; kind < 5; kind++ {
		if !flagged[kind] {
			t.Errorf("attack kind %d never flagged (missed %d windows)", kind, missed[kind])
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, mixed, models := fixtures(t)
	data, err := models.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Window != models.Window ||
		loaded.AEThreshold != models.AEThreshold ||
		loaded.LSTMThreshold != models.LSTMThreshold {
		t.Error("bundle metadata mismatch")
	}
	// Identical scores after reload.
	a := models.ScoreTraceAE(mixed.Trace[:40])
	b := loaded.ScoreTraceAE(mixed.Trace[:40])
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("window %d: scores differ after reload", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("nope")); err == nil {
		t.Error("garbage bundle accepted")
	}
	if _, err := Load([]byte(`{"window":0}`)); err == nil {
		t.Error("zero-window bundle accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	benign, _, _ := fixtures(t)
	short := benign[:200]
	m1, err := Train(short, TrainOptions{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(short, TrainOptions{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m1.AEThreshold != m2.AEThreshold || m1.LSTMThreshold != m2.LSTMThreshold {
		t.Errorf("thresholds differ across identical trainings: %g/%g vs %g/%g",
			m1.AEThreshold, m1.LSTMThreshold, m2.AEThreshold, m2.LSTMThreshold)
	}
}
