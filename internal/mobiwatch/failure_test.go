package mobiwatch

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// garbageNode is an E2 node that admits subscriptions and then sends
// malformed indication payloads — failure injection for the xApp's
// decode path.
type garbageNode struct {
	ep   *e2ap.Endpoint
	subs chan e2ap.RequestID
}

func startGarbageNode(t *testing.T, p *ric.Platform) *garbageNode {
	t.Helper()
	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	n := &garbageNode{ep: nodeEnd, subs: make(chan e2ap.RequestID, 4)}
	if err := nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: "garbage-node"}); err != nil {
		t.Fatal(err)
	}
	if resp, err := nodeEnd.Recv(); err != nil || resp.Type != e2ap.TypeE2SetupResponse {
		t.Fatalf("setup: %+v %v", resp, err)
	}
	go func() {
		for {
			msg, err := nodeEnd.Recv()
			if err != nil {
				return
			}
			if msg.Type == e2ap.TypeSubscriptionRequest {
				nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeSubscriptionResponse, RequestID: msg.RequestID})
				n.subs <- msg.RequestID
			}
		}
	}()
	return n
}

func TestXAppSurvivesMalformedIndications(t *testing.T) {
	_, _, models := fixtures(t)
	store := sdl.New()
	p := ric.NewPlatform(store)
	defer p.Close()
	node := startGarbageNode(t, p)
	waitReady(t, p)

	x, err := p.RegisterXApp("mobiwatch")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(x, models, RunOptions{NodeID: "garbage-node", ReportPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reqID := <-node.subs

	// A stream of malformed payloads must not crash the runtime or
	// produce alerts.
	for i := 0; i < 10; i++ {
		node.ep.Send(&e2ap.Message{
			Type: e2ap.TypeIndication, RequestID: reqID,
			IndicationSN: uint64(i), IndicationMessage: []byte{0x01, 0xFF, 0x42},
		})
	}
	time.Sleep(50 * time.Millisecond)
	if got := rt.Stats().BatchesHandled.Load(); got != 0 {
		t.Errorf("malformed batches handled = %d", got)
	}
	select {
	case a := <-rt.Alerts():
		t.Fatalf("alert from garbage: %+v", a)
	default:
	}

	// An empty-but-valid batch is also harmless.
	node.ep.Send(&e2ap.Message{
		Type: e2ap.TypeIndication, RequestID: reqID,
		IndicationSN: 99, IndicationMessage: nil,
	})
	time.Sleep(20 * time.Millisecond)
	if rt.Stats().RecordsSeen.Load() != 0 {
		t.Error("records seen from empty batch")
	}
	rt.Stop()
}

func TestXAppStopsWhenNodeVanishes(t *testing.T) {
	_, _, models := fixtures(t)
	p := ric.NewPlatform(sdl.New())
	defer p.Close()
	node := startGarbageNode(t, p)
	waitReady(t, p)

	x, _ := p.RegisterXApp("mobiwatch")
	rt, err := Run(x, models, RunOptions{NodeID: "garbage-node", ReportPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	<-node.subs
	node.ep.Close() // node dies

	select {
	case _, open := <-rt.Alerts():
		if open {
			t.Error("alert instead of close after node death")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("alert channel not closed after node death")
	}
}

func waitReady(t *testing.T, p *ric.Platform) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("node not attached")
		}
		time.Sleep(time.Millisecond)
	}
}
