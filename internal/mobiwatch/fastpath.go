package mobiwatch

import (
	"time"

	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nn"
	"github.com/6g-xsec/xsec/internal/prov"
)

// This file is the xApp's batched scoring fast path. Instead of scoring
// each window as its completing record arrives (one GEMV per layer per
// window), workers encode records straight into a float32 row buffer,
// append completed windows to a pending batch tensor, and score the
// whole batch with one tiled GEMM per layer when it fills or ages out.
// The float64 models, training, and the scalar reference path
// (RunOptions.Inference = "f64") are untouched.

// FastEngines bundles the reduced-precision batched engines for one
// model bundle. Engines are immutable and safe for concurrent use with
// per-worker scratches.
type FastEngines struct {
	Prec nn.Precision
	AE   *nn.AEInference
	LSTM *nn.LSTMInference
}

// Engines returns the bundle's inference engines at the given precision,
// building them on first use and caching them for every later caller
// (workers across shards and xApp instances share one engine pair).
// Engines built from a bundle do not follow later retraining.
func (m *Models) Engines(prec nn.Precision) *FastEngines {
	build := func() *FastEngines {
		e := &FastEngines{Prec: prec}
		if prec == nn.Int8 {
			e.AE, e.LSTM = m.AE.QuantizeI8(), m.LSTM.QuantizeI8()
		} else {
			e.AE, e.LSTM = m.AE.QuantizeF32(), m.LSTM.QuantizeF32()
		}
		return e
	}
	c := m.engines
	if c == nil {
		// Hand-constructed bundle without a cache: build uncached.
		return build()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byPre[prec]; ok {
		return e
	}
	e := build()
	if c.byPre == nil {
		c.byPre = make(map[nn.Precision]*FastEngines)
	}
	c.byPre[prec] = e
	return e
}

// winMeta carries everything a pending window needs to raise an alert
// after its batch is scored: its position in the worker's record
// history, its sequence-number span, and the E2 indication that
// completed it.
type winMeta struct {
	start    int // index of the window's first record in worker.recent
	n        int // records in the window (N; N+1 for LSTM incl. predicted)
	seqFirst uint64
	seqLast  uint64
	at       time.Time
	sn       uint64
}

// fastState is one worker's batch accumulator. All fields are owned by
// the worker goroutine.
type fastState struct {
	eng  *FastEngines
	rows *feature.RowBuffer // float32 mirror of worker.recent

	aeBatch []float32 // pending AE windows, each Window×dim
	aeMeta  []winMeta

	lstmBatch   []float32 // pending LSTM windows, each Window×dim
	lstmTargets []float32 // their next vectors, each dim
	lstmMeta    []winMeta

	aeScratch   *nn.AEBatchScratch
	lstmScratch *nn.LSTMBatchScratch
	scores      []float32
}

func newFastState(models *Models, prec nn.Precision) *fastState {
	eng := models.Engines(prec)
	return &fastState{
		eng:         eng,
		rows:        feature.NewRowBuffer(models.RecordDim()),
		aeScratch:   eng.AE.NewBatchScratch(),
		lstmScratch: eng.LSTM.NewBatchScratch(),
	}
}

// pending returns how many AE windows are waiting (LSTM windows pair
// with AE windows one-to-one after warm-up, so this is the batch size).
func (f *fastState) pending() int { return len(f.aeMeta) + len(f.lstmMeta) }

// minPendingStart returns the smallest record index any pending window
// still references, or n when nothing is pending.
func (f *fastState) minPendingStart(n int) int {
	min := n
	if len(f.aeMeta) > 0 && f.aeMeta[0].start < min {
		min = f.aeMeta[0].start
	}
	if len(f.lstmMeta) > 0 && f.lstmMeta[0].start < min {
		min = f.lstmMeta[0].start
	}
	return min
}

// shift rebases pending window indices after the worker dropped the
// oldest drop records from its history.
func (f *fastState) shift(drop int) {
	f.rows.Trim(drop)
	for i := range f.aeMeta {
		f.aeMeta[i].start -= drop
	}
	for i := range f.lstmMeta {
		f.lstmMeta[i].start -= drop
	}
}

// enqueueLatest appends the newest completed AE window — and, once
// enough history exists, the newest LSTM (window, next) pair — to the
// pending batch tensors. One contiguous copy per window, no allocation
// in steady state.
func (w *worker) enqueueLatest() {
	f := w.fast
	N := w.rt.models.Window
	n := f.rows.Len()

	f.aeBatch = f.rows.AppendWindowF32(f.aeBatch, n-N, N)
	f.aeMeta = append(f.aeMeta, winMeta{
		start:    n - N,
		n:        N,
		seqFirst: w.recent[n-N].Seq,
		seqLast:  w.recent[n-1].Seq,
		at:       w.batchAt,
		sn:       w.batchSN,
	})

	if n >= N+1 {
		f.lstmBatch = f.rows.AppendWindowF32(f.lstmBatch, n-N-1, N)
		f.lstmTargets = f.rows.AppendWindowF32(f.lstmTargets, n-1, 1)
		// The raised window spans the N inputs plus the predicted record.
		f.lstmMeta = append(f.lstmMeta, winMeta{
			start:    n - N - 1,
			n:        N + 1,
			seqFirst: w.recent[n-N-1].Seq,
			seqLast:  w.recent[n-1].Seq,
			at:       w.batchAt,
			sn:       w.batchSN,
		})
	}
}

// flushLocked scores every pending window in one batched pass per model
// and raises alerts for threshold crossings. The caller holds the
// runtime's threshold read-lock.
func (w *worker) flushLocked(nodeID string) {
	rt := w.rt
	f := w.fast
	dim := f.rows.Dim()
	N := rt.models.Window

	if nAE := len(f.aeMeta); nAE > 0 {
		f.scores = ensureScores(f.scores, nAE)
		f.eng.AE.ScoreBatch(f.aeScratch, f.aeBatch, nAE, dim, f.scores)
		winLen := N * dim
		for i := range f.aeMeta {
			m := &f.aeMeta[i]
			s := float64(f.scores[i])
			rt.stats.WindowsScored.Add(1)
			obsWindows.Inc()
			prov.Record(prov.Event{
				Chain:     prov.ChainID{Node: nodeID, SN: m.sn},
				Kind:      prov.KindWindow,
				At:        m.at,
				SeqFirst:  m.seqFirst,
				SeqLast:   m.seqLast,
				Digest:    prov.DigestFloats32(f.aeBatch[i*winLen : (i+1)*winLen]),
				Model:     string(ModelAE),
				Score:     s,
				Threshold: rt.models.AEThreshold,
				Flagged:   s > rt.models.AEThreshold,
			})
			if s > rt.models.AEThreshold {
				obsAnomalyAE.Inc()
				w.raise(nodeID, m.start, m.n, s, rt.models.AEThreshold, ModelAE, m.at, m.sn)
			}
		}
		f.aeBatch = f.aeBatch[:0]
		f.aeMeta = f.aeMeta[:0]
	}

	if nLSTM := len(f.lstmMeta); nLSTM > 0 {
		f.scores = ensureScores(f.scores, nLSTM)
		f.eng.LSTM.ScoreBatch(f.lstmScratch, f.lstmBatch, f.lstmTargets, nLSTM, N, f.scores)
		winLen := N * dim
		for i := range f.lstmMeta {
			m := &f.lstmMeta[i]
			s := float64(f.scores[i])
			rt.stats.WindowsScored.Add(1)
			obsWindows.Inc()
			prov.Record(prov.Event{
				Chain:    prov.ChainID{Node: nodeID, SN: m.sn},
				Kind:     prov.KindWindow,
				At:       m.at,
				SeqFirst: m.seqFirst,
				SeqLast:  m.seqLast,
				Digest: prov.NewDigest().
					Floats32(f.lstmBatch[i*winLen : (i+1)*winLen]).
					Floats32(f.lstmTargets[i*dim : (i+1)*dim]),
				Model:     string(ModelLSTM),
				Score:     s,
				Threshold: rt.models.LSTMThreshold,
				Flagged:   s > rt.models.LSTMThreshold,
			})
			if s > rt.models.LSTMThreshold {
				obsAnomalyLSTM.Inc()
				w.raise(nodeID, m.start, m.n, s, rt.models.LSTMThreshold, ModelLSTM, m.at, m.sn)
			}
		}
		f.lstmBatch = f.lstmBatch[:0]
		f.lstmTargets = f.lstmTargets[:0]
		f.lstmMeta = f.lstmMeta[:0]
	}

	// Pending windows no longer pin history; trim to context needs.
	w.trimHistory()
}

func ensureScores(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// batchChunk is the offline batched scorers' tensor size: large enough
// to amortize per-batch overhead, small enough to stay L2-resident.
const batchChunk = 64

// ScoreTraceAEBatched scores every window of a trace through the batched
// inference engine at the given precision. Float64 falls back to the
// scalar reference path; scores then match ScoreTraceAE exactly.
func (m *Models) ScoreTraceAEBatched(tr mobiflow.Trace, prec nn.Precision) []WindowScore {
	if prec == nn.Float64 {
		return m.ScoreTraceAE(tr)
	}
	eng := m.Engines(prec)
	dim := m.RecordDim()
	N := m.Window
	rows := encodeRows(tr, m.Vocab, dim)
	if rows.Len() < N {
		return nil
	}
	nWins := rows.Len() - N + 1
	out := make([]WindowScore, nWins)
	scratch := eng.AE.NewBatchScratch()
	xb := make([]float32, 0, batchChunk*N*dim)
	scores := make([]float32, batchChunk)
	for base := 0; base < nWins; base += batchChunk {
		n := batchChunk
		if base+n > nWins {
			n = nWins - base
		}
		xb = xb[:0]
		for i := 0; i < n; i++ {
			xb = rows.AppendWindowF32(xb, base+i, N)
		}
		eng.AE.ScoreBatch(scratch, xb, n, dim, scores)
		for i := 0; i < n; i++ {
			sc := float64(scores[i])
			out[base+i] = WindowScore{Index: base + i, Score: sc,
				Threshold: m.AEThreshold, Anomalous: sc > m.AEThreshold, Model: ModelAE}
		}
	}
	return out
}

// ScoreTraceLSTMBatched scores every (window, next) pair of a trace
// through the batched inference engine at the given precision. Float64
// falls back to the scalar reference path.
func (m *Models) ScoreTraceLSTMBatched(tr mobiflow.Trace, prec nn.Precision) []WindowScore {
	if prec == nn.Float64 {
		return m.ScoreTraceLSTM(tr)
	}
	eng := m.Engines(prec)
	dim := m.RecordDim()
	N := m.Window
	rows := encodeRows(tr, m.Vocab, dim)
	if rows.Len() < N+1 {
		return nil
	}
	nWins := rows.Len() - N
	out := make([]WindowScore, nWins)
	scratch := eng.LSTM.NewBatchScratch()
	xb := make([]float32, 0, batchChunk*N*dim)
	targets := make([]float32, 0, batchChunk*dim)
	scores := make([]float32, batchChunk)
	for base := 0; base < nWins; base += batchChunk {
		n := batchChunk
		if base+n > nWins {
			n = nWins - base
		}
		xb, targets = xb[:0], targets[:0]
		for i := 0; i < n; i++ {
			xb = rows.AppendWindowF32(xb, base+i, N)
			targets = rows.AppendWindowF32(targets, base+i+N, 1)
		}
		eng.LSTM.ScoreBatch(scratch, xb, targets, n, N, scores)
		for i := 0; i < n; i++ {
			sc := float64(scores[i])
			out[base+i] = WindowScore{Index: base + i, Score: sc,
				Threshold: m.LSTMThreshold, Anomalous: sc > m.LSTMThreshold, Model: ModelLSTM}
		}
	}
	return out
}

// encodeRows runs the streaming encoder over a whole trace into a
// float32 row buffer — the offline counterpart of the worker's ingest.
func encodeRows(tr mobiflow.Trace, vocab *feature.Vocabulary, dim int) *feature.RowBuffer {
	e := feature.NewEncoder(vocab)
	rows := feature.NewRowBuffer(dim)
	for _, r := range tr {
		rows.Push(e, r)
	}
	return rows
}
