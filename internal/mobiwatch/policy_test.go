package mobiwatch

import (
	"testing"
)

func TestSetPercentileRethresholds(t *testing.T) {
	_, _, models := fixtures(t)
	if len(models.AEQuantiles) != 101 || len(models.LSTMQuantiles) != 101 {
		t.Fatalf("quantiles missing: %d/%d", len(models.AEQuantiles), len(models.LSTMQuantiles))
	}
	// Quantiles are non-decreasing.
	for i := 1; i <= 100; i++ {
		if models.AEQuantiles[i] < models.AEQuantiles[i-1] {
			t.Fatalf("AE quantiles not monotone at %d", i)
		}
	}

	// Work on a copy: the fixture is shared across tests.
	m := *models
	origAE, origLSTM := m.AEThreshold, m.LSTMThreshold
	if err := m.SetPercentile(90); err != nil {
		t.Fatal(err)
	}
	if m.AEThreshold >= origAE || m.LSTMThreshold >= origLSTM {
		t.Errorf("90th-pct thresholds (%g, %g) not below 99th-pct (%g, %g)",
			m.AEThreshold, m.LSTMThreshold, origAE, origLSTM)
	}
	if err := m.SetPercentile(99); err != nil {
		t.Fatal(err)
	}
	// Percentile 99 restores (close to) the original fit.
	rel := (m.AEThreshold - origAE) / origAE
	if rel > 0.01 || rel < -0.01 {
		t.Errorf("99th-pct refit %g deviates from original %g", m.AEThreshold, origAE)
	}

	// Bounds.
	if err := m.SetPercentile(0); err == nil {
		t.Error("percentile 0 accepted")
	}
	if err := m.SetPercentile(101); err == nil {
		t.Error("percentile 101 accepted")
	}
	if err := m.SetPercentile(100); err != nil {
		t.Errorf("percentile 100: %v", err)
	}
}

func TestSetPercentileWithoutQuantiles(t *testing.T) {
	m := &Models{}
	if err := m.SetPercentile(95); err == nil {
		t.Error("percentile applied without stored quantiles")
	}
}

func TestQuantilesSurviveSaveLoad(t *testing.T) {
	_, _, models := fixtures(t)
	data, err := models.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.AEQuantiles) != 101 {
		t.Fatal("quantiles lost in serialization")
	}
	if err := loaded.SetPercentile(95); err != nil {
		t.Fatal(err)
	}
	// A copy of the original at 95 matches the reloaded one.
	m := *models
	m.SetPercentile(95)
	if loaded.AEThreshold != m.AEThreshold {
		t.Errorf("reloaded 95th-pct %g != original %g", loaded.AEThreshold, m.AEThreshold)
	}
}
