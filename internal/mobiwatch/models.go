// Package mobiwatch implements the MOBIWATCH xApp (§3.2 of the paper):
// unsupervised deep-learning anomaly detection over MOBIFLOW telemetry.
// Two models trained only on benign traffic score sliding windows — an
// autoencoder by reconstruction error and an LSTM by next-entry
// prediction error — against a high-percentile threshold fitted on the
// training scores. Windows above threshold are flagged and handed to the
// LLM Analyzer for expert referencing.
package mobiwatch

import (
	"encoding/json"
	"fmt"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nn"
)

// TrainOptions parameterizes offline model fitting (the SMO "Train"
// stage of Figure 3).
type TrainOptions struct {
	// Window is the sliding-window size N (default 4).
	Window int
	// Percentile is the threshold percentile over training scores
	// (default 99, the paper's choice assuming 1% training noise).
	Percentile float64
	// Hidden are the autoencoder encoder widths (default {64, 16}).
	Hidden []int
	// LSTMHidden is the LSTM hidden width (default 32).
	LSTMHidden int
	// Epochs (default 40) and LR (default 3e-3) drive both models.
	Epochs int
	LR     float64
	// Seed makes training deterministic.
	Seed int64
}

func (o *TrainOptions) defaults() {
	if o.Window == 0 {
		o.Window = 4
	}
	if o.Percentile == 0 {
		o.Percentile = 99
	}
	if len(o.Hidden) == 0 {
		o.Hidden = []int{64, 16}
	}
	if o.LSTMHidden == 0 {
		o.LSTMHidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 40
	}
	if o.LR == 0 {
		o.LR = 3e-3
	}
}

// Models is a deployable MobiWatch model bundle: both detectors, the
// shared vocabulary, the window size, and the fitted thresholds.
type Models struct {
	Vocab  *feature.Vocabulary
	Window int

	AE          *nn.Autoencoder
	AEThreshold float64

	LSTM          *nn.LSTM
	LSTMThreshold float64

	// AEQuantiles / LSTMQuantiles are the training-score quantiles
	// (index = percentile 0..100). They let an A1 policy re-threshold a
	// deployed model at a different percentile without retraining.
	AEQuantiles   []float64
	LSTMQuantiles []float64
}

// quantiles computes the 0..100 percentile values of scores.
func quantiles(scores []float64) []float64 {
	out := make([]float64, 101)
	for p := 0; p <= 100; p++ {
		pct := float64(p)
		if pct == 0 {
			pct = 0.001 // PercentileThreshold requires pct > 0
		}
		out[p] = detect.PercentileThreshold(scores, pct)
	}
	return out
}

// SetPercentile re-fits both detection thresholds at a new percentile of
// the stored training-score distribution (the A1 threshold policy).
func (m *Models) SetPercentile(pct float64) error {
	if pct <= 0 || pct > 100 {
		return fmt.Errorf("mobiwatch: percentile %v out of (0,100]", pct)
	}
	if len(m.AEQuantiles) != 101 || len(m.LSTMQuantiles) != 101 {
		return fmt.Errorf("mobiwatch: bundle has no stored quantiles (trained before this feature?)")
	}
	interp := func(q []float64) float64 {
		lo := int(pct)
		if lo >= 100 {
			return q[100]
		}
		frac := pct - float64(lo)
		return q[lo]*(1-frac) + q[lo+1]*frac
	}
	m.AEThreshold = interp(m.AEQuantiles)
	m.LSTMThreshold = interp(m.LSTMQuantiles)
	return nil
}

// Train fits both models on a benign telemetry trace and calibrates the
// detection thresholds (§4.1: "we select a 99% percentile threshold
// among the reconstruction errors").
func Train(benign mobiflow.Trace, opts TrainOptions) (*Models, error) {
	opts.defaults()
	if len(benign) <= opts.Window {
		return nil, fmt.Errorf("mobiwatch: %d records cannot fill window %d", len(benign), opts.Window)
	}
	vocab := feature.BuildVocabulary(benign)
	vecs := feature.Vectorize(benign, vocab)
	dim := len(vecs[0])

	// Autoencoder on flattened windows.
	winAE := feature.WindowsAE(vecs, opts.Window)
	ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim * opts.Window, Hidden: opts.Hidden, Seed: opts.Seed})
	if _, err := ae.Train(winAE, nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 16, LR: opts.LR, Seed: opts.Seed + 1}); err != nil {
		return nil, fmt.Errorf("mobiwatch: training autoencoder: %w", err)
	}
	aeScores := make([]float64, len(winAE))
	for i, w := range winAE {
		aeScores[i] = aeWindowScore(ae, w, dim)
	}

	// LSTM next-entry prediction.
	winL, nexts := feature.WindowsLSTM(vecs, opts.Window)
	lstm := nn.NewLSTM(opts.Seed+2, dim, opts.LSTMHidden, dim)
	if _, err := lstm.TrainNextStep(winL, nexts, nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 16, LR: opts.LR, Seed: opts.Seed + 3}); err != nil {
		return nil, fmt.Errorf("mobiwatch: training lstm: %w", err)
	}
	lstmScores := make([]float64, len(winL))
	for i := range winL {
		lstmScores[i] = lstm.Score(winL[i], nexts[i])
	}

	return &Models{
		Vocab:         vocab,
		Window:        opts.Window,
		AE:            ae,
		AEThreshold:   detect.PercentileThreshold(aeScores, opts.Percentile),
		LSTM:          lstm,
		LSTMThreshold: detect.PercentileThreshold(lstmScores, opts.Percentile),
		AEQuantiles:   quantiles(aeScores),
		LSTMQuantiles: quantiles(lstmScores),
	}, nil
}

// bundleJSON is the serialized model bundle for the SMO registry.
type bundleJSON struct {
	Messages      []string        `json:"messages"`
	Window        int             `json:"window"`
	AE            json.RawMessage `json:"autoencoder"`
	AEThreshold   float64         `json:"ae_threshold"`
	LSTM          json.RawMessage `json:"lstm"`
	LSTMThreshold float64         `json:"lstm_threshold"`
	AEQuantiles   []float64       `json:"ae_quantiles,omitempty"`
	LSTMQuantiles []float64       `json:"lstm_quantiles,omitempty"`
}

// Save serializes the bundle for deployment.
func (m *Models) Save() ([]byte, error) {
	aeData, err := m.AE.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: saving autoencoder: %w", err)
	}
	lstmData, err := m.LSTM.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: saving lstm: %w", err)
	}
	return json.Marshal(bundleJSON{
		Messages:      m.Vocab.Messages,
		Window:        m.Window,
		AE:            aeData,
		AEThreshold:   m.AEThreshold,
		LSTM:          lstmData,
		LSTMThreshold: m.LSTMThreshold,
		AEQuantiles:   m.AEQuantiles,
		LSTMQuantiles: m.LSTMQuantiles,
	})
}

// Load reconstructs a bundle produced by Save.
func Load(data []byte) (*Models, error) {
	var b bundleJSON
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("mobiwatch: parsing bundle: %w", err)
	}
	if b.Window <= 0 {
		return nil, fmt.Errorf("mobiwatch: bundle has window %d", b.Window)
	}
	ae, err := nn.LoadAutoencoder(b.AE)
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: loading autoencoder: %w", err)
	}
	lstm, err := nn.LoadLSTM(b.LSTM)
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: loading lstm: %w", err)
	}
	return &Models{
		Vocab:         feature.NewVocabulary(b.Messages),
		Window:        b.Window,
		AE:            ae,
		AEThreshold:   b.AEThreshold,
		LSTM:          lstm,
		LSTMThreshold: b.LSTMThreshold,
		AEQuantiles:   b.AEQuantiles,
		LSTMQuantiles: b.LSTMQuantiles,
	}, nil
}

// ModelName selects which detector scored a window.
type ModelName string

// Detector names.
const (
	ModelAE   ModelName = "autoencoder"
	ModelLSTM ModelName = "lstm"
)

// WindowScore is one scored sliding window.
type WindowScore struct {
	// Index is the window's position (aligned with feature.WindowsAE /
	// WindowsLSTM output for the scored trace).
	Index int
	// Score is the anomaly score; Threshold the calibrated cut.
	Score     float64
	Threshold float64
	// Anomalous = Score > Threshold.
	Anomalous bool
	Model     ModelName
}

// aeWindowScore scores one flattened window: the window is reconstructed
// jointly, and the score is the worst per-record reconstruction MSE. The
// max-aggregation avoids diluting a single strongly anomalous entry
// across the whole window (cf. per-timestamp error aggregation in the
// multivariate anomaly-detection literature the paper builds on).
func aeWindowScore(ae *nn.Autoencoder, flat []float64, recordDim int) float64 {
	recon := ae.Reconstruct(flat)
	worst := 0.0
	for off := 0; off+recordDim <= len(flat); off += recordDim {
		var sum float64
		for i := off; i < off+recordDim; i++ {
			d := recon[i] - flat[i]
			sum += d * d
		}
		if mse := sum / float64(recordDim); mse > worst {
			worst = mse
		}
	}
	return worst
}

// RecordDim returns the per-record feature dimension of the bundle.
func (m *Models) RecordDim() int { return feature.Dim(m.Vocab) }

// ScoreAEWindow scores one flattened window with the autoencoder.
func (m *Models) ScoreAEWindow(flat []float64) float64 {
	return aeWindowScore(m.AE, flat, m.RecordDim())
}

// ScoreTraceAE scores every window of a trace with the autoencoder.
func (m *Models) ScoreTraceAE(tr mobiflow.Trace) []WindowScore {
	vecs := feature.Vectorize(tr, m.Vocab)
	wins := feature.WindowsAE(vecs, m.Window)
	dim := m.RecordDim()
	out := make([]WindowScore, len(wins))
	for i, w := range wins {
		s := aeWindowScore(m.AE, w, dim)
		out[i] = WindowScore{Index: i, Score: s, Threshold: m.AEThreshold, Anomalous: s > m.AEThreshold, Model: ModelAE}
	}
	return out
}

// ScoreTraceLSTM scores every (window, next) pair with the LSTM.
func (m *Models) ScoreTraceLSTM(tr mobiflow.Trace) []WindowScore {
	vecs := feature.Vectorize(tr, m.Vocab)
	wins, nexts := feature.WindowsLSTM(vecs, m.Window)
	out := make([]WindowScore, len(wins))
	for i := range wins {
		s := m.LSTM.Score(wins[i], nexts[i])
		out[i] = WindowScore{Index: i, Score: s, Threshold: m.LSTMThreshold, Anomalous: s > m.LSTMThreshold, Model: ModelLSTM}
	}
	return out
}
