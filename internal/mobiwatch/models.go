// Package mobiwatch implements the MOBIWATCH xApp (§3.2 of the paper):
// unsupervised deep-learning anomaly detection over MOBIFLOW telemetry.
// Two models trained only on benign traffic score sliding windows — an
// autoencoder by reconstruction error and an LSTM by next-entry
// prediction error — against a high-percentile threshold fitted on the
// training scores. Windows above threshold are flagged and handed to the
// LLM Analyzer for expert referencing.
package mobiwatch

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nn"
)

// TrainOptions parameterizes offline model fitting (the SMO "Train"
// stage of Figure 3).
type TrainOptions struct {
	// Window is the sliding-window size N (default 4).
	Window int
	// Percentile is the threshold percentile over training scores
	// (default 99, the paper's choice assuming 1% training noise).
	Percentile float64
	// Hidden are the autoencoder encoder widths (default {64, 16}).
	Hidden []int
	// LSTMHidden is the LSTM hidden width (default 32).
	LSTMHidden int
	// Epochs (default 40) and LR (default 3e-3) drive both models.
	Epochs int
	LR     float64
	// Seed makes training deterministic.
	Seed int64
}

func (o *TrainOptions) defaults() {
	if o.Window == 0 {
		o.Window = 4
	}
	if o.Percentile == 0 {
		o.Percentile = 99
	}
	if len(o.Hidden) == 0 {
		o.Hidden = []int{64, 16}
	}
	if o.LSTMHidden == 0 {
		o.LSTMHidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 40
	}
	if o.LR == 0 {
		o.LR = 3e-3
	}
}

// Models is a deployable MobiWatch model bundle: both detectors, the
// shared vocabulary, the window size, and the fitted thresholds.
type Models struct {
	Vocab  *feature.Vocabulary
	Window int

	AE          *nn.Autoencoder
	AEThreshold float64

	LSTM          *nn.LSTM
	LSTMThreshold float64

	// AEQuantiles / LSTMQuantiles are the training-score quantiles
	// (index = percentile 0..100). They let an A1 policy re-threshold a
	// deployed model at a different percentile without retraining.
	AEQuantiles   []float64
	LSTMQuantiles []float64

	// engines caches the lazily built reduced-precision inference
	// engines shared by every scoring worker (see Engines). It lives
	// behind a pointer — set at construction — so a Models value can be
	// shallow-copied (the tests do, to vary thresholds).
	engines *engineCache
}

// engineCache holds built inference engines, keyed by precision.
type engineCache struct {
	mu    sync.Mutex
	byPre map[nn.Precision]*FastEngines
}

// calibrate fits a percentile threshold and the 0..100 quantile table
// from one score distribution, sorting it exactly once (the quantile
// table alone needs 101 percentile queries).
func calibrate(scores []float64, pct float64) (threshold float64, quants []float64) {
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	quants = make([]float64, 101)
	for p := 0; p <= 100; p++ {
		q := float64(p)
		if q == 0 {
			q = 0.001 // SortedPercentile requires pct > 0
		}
		quants[p] = detect.SortedPercentile(sorted, q)
	}
	return detect.SortedPercentile(sorted, pct), quants
}

// SetPercentile re-fits both detection thresholds at a new percentile of
// the stored training-score distribution (the A1 threshold policy).
func (m *Models) SetPercentile(pct float64) error {
	if pct <= 0 || pct > 100 {
		return fmt.Errorf("mobiwatch: percentile %v out of (0,100]", pct)
	}
	if len(m.AEQuantiles) != 101 || len(m.LSTMQuantiles) != 101 {
		return fmt.Errorf("mobiwatch: bundle has no stored quantiles (trained before this feature?)")
	}
	interp := func(q []float64) float64 {
		lo := int(pct)
		if lo >= 100 {
			return q[100]
		}
		frac := pct - float64(lo)
		return q[lo]*(1-frac) + q[lo+1]*frac
	}
	m.AEThreshold = interp(m.AEQuantiles)
	m.LSTMThreshold = interp(m.LSTMQuantiles)
	return nil
}

// Train fits both models on a benign telemetry trace and calibrates the
// detection thresholds (§4.1: "we select a 99% percentile threshold
// among the reconstruction errors").
func Train(benign mobiflow.Trace, opts TrainOptions) (*Models, error) {
	opts.defaults()
	if len(benign) <= opts.Window {
		return nil, fmt.Errorf("mobiwatch: %d records cannot fill window %d", len(benign), opts.Window)
	}
	vocab := feature.BuildVocabulary(benign)
	vecs := feature.Vectorize(benign, vocab)
	dim := len(vecs[0])

	// Autoencoder on flattened windows.
	winAE := feature.WindowsAE(vecs, opts.Window)
	ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim * opts.Window, Hidden: opts.Hidden, Seed: opts.Seed})
	if _, err := ae.Train(winAE, nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 16, LR: opts.LR, Seed: opts.Seed + 1}); err != nil {
		return nil, fmt.Errorf("mobiwatch: training autoencoder: %w", err)
	}

	// LSTM next-entry prediction.
	winL, nexts := feature.WindowsLSTM(vecs, opts.Window)
	lstm := nn.NewLSTM(opts.Seed+2, dim, opts.LSTMHidden, dim)
	if _, err := lstm.TrainNextStep(winL, nexts, nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 16, LR: opts.LR, Seed: opts.Seed + 3}); err != nil {
		return nil, fmt.Errorf("mobiwatch: training lstm: %w", err)
	}

	m := &Models{
		Vocab:   vocab,
		Window:  opts.Window,
		AE:      ae,
		LSTM:    lstm,
		engines: &engineCache{},
	}
	m.CalibrateThresholds(winAE, winL, nexts, opts.Percentile)
	return m, nil
}

// CalibrateThresholds re-scores the given benign windows with both
// models — across a worker pool — and fits the detection thresholds and
// quantile tables at the given percentile. Train calls it after
// fitting; callers can re-invoke it to recalibrate a deployed bundle on
// fresh benign telemetry without retraining.
func (m *Models) CalibrateThresholds(winAE [][]float64, winL [][][]float64, nexts [][]float64, pct float64) {
	dim := m.RecordDim()
	aeScores := make([]float64, len(winAE))
	m.forEachWindow(len(winAE), 0, func(s *ScoreScratch, i int) {
		aeScores[i] = aeWindowScoreWith(m.AE, s.AE, winAE[i], dim)
	})
	lstmScores := make([]float64, len(winL))
	m.forEachWindow(len(winL), 0, func(s *ScoreScratch, i int) {
		lstmScores[i] = m.LSTM.ScoreWith(s.LSTM, winL[i], nexts[i])
	})
	m.AEThreshold, m.AEQuantiles = calibrate(aeScores, pct)
	m.LSTMThreshold, m.LSTMQuantiles = calibrate(lstmScores, pct)
}

// bundleJSON is the serialized model bundle for the SMO registry.
type bundleJSON struct {
	Messages      []string        `json:"messages"`
	Window        int             `json:"window"`
	AE            json.RawMessage `json:"autoencoder"`
	AEThreshold   float64         `json:"ae_threshold"`
	LSTM          json.RawMessage `json:"lstm"`
	LSTMThreshold float64         `json:"lstm_threshold"`
	AEQuantiles   []float64       `json:"ae_quantiles,omitempty"`
	LSTMQuantiles []float64       `json:"lstm_quantiles,omitempty"`
}

// Save serializes the bundle for deployment.
func (m *Models) Save() ([]byte, error) {
	aeData, err := m.AE.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: saving autoencoder: %w", err)
	}
	lstmData, err := m.LSTM.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: saving lstm: %w", err)
	}
	return json.Marshal(bundleJSON{
		Messages:      m.Vocab.Messages,
		Window:        m.Window,
		AE:            aeData,
		AEThreshold:   m.AEThreshold,
		LSTM:          lstmData,
		LSTMThreshold: m.LSTMThreshold,
		AEQuantiles:   m.AEQuantiles,
		LSTMQuantiles: m.LSTMQuantiles,
	})
}

// Load reconstructs a bundle produced by Save.
func Load(data []byte) (*Models, error) {
	var b bundleJSON
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("mobiwatch: parsing bundle: %w", err)
	}
	if b.Window <= 0 {
		return nil, fmt.Errorf("mobiwatch: bundle has window %d", b.Window)
	}
	ae, err := nn.LoadAutoencoder(b.AE)
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: loading autoencoder: %w", err)
	}
	lstm, err := nn.LoadLSTM(b.LSTM)
	if err != nil {
		return nil, fmt.Errorf("mobiwatch: loading lstm: %w", err)
	}
	return &Models{
		Vocab:         feature.NewVocabulary(b.Messages),
		Window:        b.Window,
		AE:            ae,
		AEThreshold:   b.AEThreshold,
		LSTM:          lstm,
		LSTMThreshold: b.LSTMThreshold,
		AEQuantiles:   b.AEQuantiles,
		LSTMQuantiles: b.LSTMQuantiles,
		engines:       &engineCache{},
	}, nil
}

// ModelName selects which detector scored a window.
type ModelName string

// Detector names.
const (
	ModelAE   ModelName = "autoencoder"
	ModelLSTM ModelName = "lstm"
)

// WindowScore is one scored sliding window.
type WindowScore struct {
	// Index is the window's position (aligned with feature.WindowsAE /
	// WindowsLSTM output for the scored trace).
	Index int
	// Score is the anomaly score; Threshold the calibrated cut.
	Score     float64
	Threshold float64
	// Anomalous = Score > Threshold.
	Anomalous bool
	Model     ModelName
}

// ScoreScratch is a per-goroutine workspace for scoring windows against
// a Models bundle. The bundle itself is read-only after training, so N
// goroutines can score the same bundle concurrently given N scratches;
// steady-state scoring through a scratch performs no heap allocation.
type ScoreScratch struct {
	AE   *nn.AEScratch
	LSTM *nn.LSTMScratch
}

// NewScoreScratch allocates a workspace sized for both detectors.
func (m *Models) NewScoreScratch() *ScoreScratch {
	return &ScoreScratch{AE: m.AE.NewScratch(), LSTM: m.LSTM.NewScratch()}
}

// aeWindowScoreWith scores one flattened window: the window is
// reconstructed jointly, and the score is the worst per-record
// reconstruction MSE. The max-aggregation avoids diluting a single
// strongly anomalous entry across the whole window (cf. per-timestamp
// error aggregation in the multivariate anomaly-detection literature
// the paper builds on).
func aeWindowScoreWith(ae *nn.Autoencoder, s *nn.AEScratch, flat []float64, recordDim int) float64 {
	return worstRecordMSE(ae.ReconstructWith(s, flat), flat, recordDim)
}

// worstRecordMSE returns the maximum per-record reconstruction MSE.
func worstRecordMSE(recon, flat []float64, recordDim int) float64 {
	worst := 0.0
	for off := 0; off+recordDim <= len(flat); off += recordDim {
		var sum float64
		for i := off; i < off+recordDim; i++ {
			d := recon[i] - flat[i]
			sum += d * d
		}
		if mse := sum / float64(recordDim); mse > worst {
			worst = mse
		}
	}
	return worst
}

// RecordDim returns the per-record feature dimension of the bundle.
func (m *Models) RecordDim() int { return feature.Dim(m.Vocab) }

// ScoreAEWindow scores one flattened window with the autoencoder using
// the model's default workspace (single-threaded convenience API).
func (m *Models) ScoreAEWindow(flat []float64) float64 {
	return worstRecordMSE(m.AE.Reconstruct(flat), flat, m.RecordDim())
}

// ScoreAEWindowWith scores one flattened window through the given
// workspace; safe to call from many goroutines with distinct scratches.
func (m *Models) ScoreAEWindowWith(s *ScoreScratch, flat []float64) float64 {
	return aeWindowScoreWith(m.AE, s.AE, flat, m.RecordDim())
}

// scoreChunk is how many windows a pool worker claims at a time —
// coarse enough to amortize the atomic fetch, fine enough to balance
// tail latency across workers.
const scoreChunk = 16

// seqScoreCutoff is the window count below which the pool is not worth
// its goroutine startup cost and scoring stays on the calling goroutine.
const seqScoreCutoff = 2 * scoreChunk

// forEachWindow invokes fn(scratch, i) for every window index in [0, n),
// fanning out over a worker pool with one ScoreScratch per worker.
// workers <= 0 sizes the pool to GOMAXPROCS. Every index is computed
// independently into its own output slot, so results are identical to a
// sequential pass regardless of scheduling.
func (m *Models) forEachWindow(n, workers int, fn func(s *ScoreScratch, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (n+scoreChunk-1)/scoreChunk {
		workers = (n + scoreChunk - 1) / scoreChunk
	}
	// On a single schedulable CPU the pool cannot overlap any work; its
	// goroutine startup and atomic traffic are pure overhead, so score
	// inline regardless of the requested fan-out.
	if workers <= 1 || n < seqScoreCutoff || runtime.GOMAXPROCS(0) == 1 {
		s := m.NewScoreScratch()
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := m.NewScoreScratch()
			for {
				base := int(next.Add(scoreChunk)) - scoreChunk
				if base >= n {
					return
				}
				end := base + scoreChunk
				if end > n {
					end = n
				}
				for i := base; i < end; i++ {
					fn(s, i)
				}
			}
		}()
	}
	wg.Wait()
}

// ScoreTraceAE scores every window of a trace with the autoencoder,
// fanning the windows out over a GOMAXPROCS-sized worker pool.
func (m *Models) ScoreTraceAE(tr mobiflow.Trace) []WindowScore {
	return m.ScoreTraceAEParallel(tr, 0)
}

// ScoreTraceAEParallel is ScoreTraceAE with an explicit worker count
// (0 = GOMAXPROCS, 1 = sequential). Scores are identical for every
// worker count.
func (m *Models) ScoreTraceAEParallel(tr mobiflow.Trace, workers int) []WindowScore {
	vecs := feature.Vectorize(tr, m.Vocab)
	wins := feature.WindowsAE(vecs, m.Window)
	dim := m.RecordDim()
	out := make([]WindowScore, len(wins))
	m.forEachWindow(len(wins), workers, func(s *ScoreScratch, i int) {
		sc := aeWindowScoreWith(m.AE, s.AE, wins[i], dim)
		out[i] = WindowScore{Index: i, Score: sc, Threshold: m.AEThreshold, Anomalous: sc > m.AEThreshold, Model: ModelAE}
	})
	return out
}

// ScoreTraceLSTM scores every (window, next) pair with the LSTM,
// fanning the windows out over a GOMAXPROCS-sized worker pool.
func (m *Models) ScoreTraceLSTM(tr mobiflow.Trace) []WindowScore {
	return m.ScoreTraceLSTMParallel(tr, 0)
}

// ScoreTraceLSTMParallel is ScoreTraceLSTM with an explicit worker
// count (0 = GOMAXPROCS, 1 = sequential). Scores are identical for
// every worker count.
func (m *Models) ScoreTraceLSTMParallel(tr mobiflow.Trace, workers int) []WindowScore {
	vecs := feature.Vectorize(tr, m.Vocab)
	wins, nexts := feature.WindowsLSTM(vecs, m.Window)
	out := make([]WindowScore, len(wins))
	m.forEachWindow(len(wins), workers, func(s *ScoreScratch, i int) {
		sc := m.LSTM.ScoreWith(s.LSTM, wins[i], nexts[i])
		out[i] = WindowScore{Index: i, Score: sc, Threshold: m.LSTMThreshold, Anomalous: sc > m.LSTMThreshold, Model: ModelLSTM}
	})
	return out
}
