package mobiwatch

import (
	"math"
	"testing"

	"github.com/6g-xsec/xsec/internal/nn"
)

// Divergence bounds for the reduced-precision engines against the
// float64 reference scores, asserted per attack class below. Float32
// loses only arithmetic rounding; int8 quantizes each weight row to 255
// levels, so scores can shift by a few percent.
const (
	f32ScoreRel = 1e-4
	f32ScoreAbs = 1e-6
	i8ScoreRel  = 0.08
	i8ScoreAbs  = 1e-3
)

// windowClass maps a window covering records [start, end) to the attack
// class of its first malicious record, or -1 for benign windows —
// mirroring the paper's any-malicious-record window labeling.
func windowClass(attackOf []int, start, end int) int {
	for i := start; i < end; i++ {
		if attackOf[i] >= 0 {
			return attackOf[i]
		}
	}
	return -1
}

// TestBatchedScoreDivergenceByAttackClass is the score-equivalence
// contract of the fast inference engine: across every seeded attack
// class (plus benign windows), batched float32 and int8 scores must stay
// within the documented bounds of the float64 reference, and float32
// threshold crossings must agree exactly on the seed dataset.
func TestBatchedScoreDivergenceByAttackClass(t *testing.T) {
	_, mixed, models := fixtures(t)
	N := models.Window

	for _, det := range []struct {
		name  string
		ref   []WindowScore
		span  int // records covered by window i: [i, i+span)
		score func(prec nn.Precision) []WindowScore
	}{
		{"ae", models.ScoreTraceAE(mixed.Trace), N,
			func(p nn.Precision) []WindowScore { return models.ScoreTraceAEBatched(mixed.Trace, p) }},
		{"lstm", models.ScoreTraceLSTM(mixed.Trace), N + 1,
			func(p nn.Precision) []WindowScore { return models.ScoreTraceLSTMBatched(mixed.Trace, p) }},
	} {
		t.Run(det.name, func(t *testing.T) {
			for _, prec := range []struct {
				p        nn.Precision
				rel, abs float64
				strict   bool // threshold crossings must agree exactly
			}{
				{nn.Float32, f32ScoreRel, f32ScoreAbs, true},
				{nn.Int8, i8ScoreRel, i8ScoreAbs, false},
			} {
				got := det.score(prec.p)
				if len(got) != len(det.ref) {
					t.Fatalf("%v: %d windows, reference %d", prec.p, len(got), len(det.ref))
				}
				worst := map[int]float64{}
				classes := map[int]int{}
				for i := range got {
					cls := windowClass(mixed.AttackOf, i, i+det.span)
					classes[cls]++
					d := math.Abs(got[i].Score - det.ref[i].Score)
					if d > worst[cls] {
						worst[cls] = d
					}
					if d > prec.abs+prec.rel*math.Abs(det.ref[i].Score) {
						t.Errorf("%v window %d (class %d): score %g, reference %g",
							prec.p, i, cls, got[i].Score, det.ref[i].Score)
					}
					if prec.strict && got[i].Anomalous != det.ref[i].Anomalous {
						t.Errorf("%v window %d (class %d): crossing %v, reference %v (score %g vs %g, threshold %g)",
							prec.p, i, cls, got[i].Anomalous, det.ref[i].Anomalous,
							got[i].Score, det.ref[i].Score, got[i].Threshold)
					}
				}
				// The mixed dataset must actually exercise benign windows
				// and all five seeded attack classes.
				for cls := -1; cls < 5; cls++ {
					if classes[cls] == 0 {
						t.Errorf("no windows of class %d in the mixed trace", cls)
					}
				}
				for cls, d := range worst {
					t.Logf("%s %v class %d: %d windows, max |Δscore| %.3g",
						det.name, prec.p, cls, classes[cls], d)
				}
			}
		})
	}
}

// TestBatchedInt8CrossingAgreement holds int8 to the detection outcome
// that matters operationally: on the seed dataset every threshold
// crossing must agree with the float64 reference (no windows sit close
// enough to the 99th-percentile thresholds for quantization noise to
// flip them).
func TestBatchedInt8CrossingAgreement(t *testing.T) {
	_, mixed, models := fixtures(t)
	refAE := models.ScoreTraceAE(mixed.Trace)
	refLSTM := models.ScoreTraceLSTM(mixed.Trace)
	i8AE := models.ScoreTraceAEBatched(mixed.Trace, nn.Int8)
	i8LSTM := models.ScoreTraceLSTMBatched(mixed.Trace, nn.Int8)
	for i := range refAE {
		if i8AE[i].Anomalous != refAE[i].Anomalous {
			t.Errorf("AE window %d: i8 crossing %v, f64 %v (score %g vs %g, threshold %g)",
				i, i8AE[i].Anomalous, refAE[i].Anomalous, i8AE[i].Score, refAE[i].Score, refAE[i].Threshold)
		}
	}
	for i := range refLSTM {
		if i8LSTM[i].Anomalous != refLSTM[i].Anomalous {
			t.Errorf("LSTM window %d: i8 crossing %v, f64 %v (score %g vs %g, threshold %g)",
				i, i8LSTM[i].Anomalous, refLSTM[i].Anomalous, i8LSTM[i].Score, refLSTM[i].Score, refLSTM[i].Threshold)
		}
	}
}

// TestBatchedFloat64FallsBackToReference pins the precision escape
// hatch: requesting f64 from the batched entry points returns the
// scalar reference path bit for bit.
func TestBatchedFloat64FallsBackToReference(t *testing.T) {
	_, mixed, models := fixtures(t)
	ae := models.ScoreTraceAEBatched(mixed.Trace, nn.Float64)
	ref := models.ScoreTraceAE(mixed.Trace)
	for i := range ref {
		if ae[i] != ref[i] {
			t.Fatalf("AE window %d: f64 batched %+v != reference %+v", i, ae[i], ref[i])
		}
	}
	lstm := models.ScoreTraceLSTMBatched(mixed.Trace, nn.Float64)
	refL := models.ScoreTraceLSTM(mixed.Trace)
	for i := range refL {
		if lstm[i] != refL[i] {
			t.Fatalf("LSTM window %d: f64 batched %+v != reference %+v", i, lstm[i], refL[i])
		}
	}
}

// TestRunRejectsUnknownInference pins flag validation at xApp start.
func TestRunRejectsUnknownInference(t *testing.T) {
	_, _, models := fixtures(t)
	if _, err := Run(nil, models, RunOptions{NodeID: "gnb-x", Inference: "bf16"}); err == nil {
		t.Fatal("Run accepted unknown inference precision")
	}
}

// TestEnginesCached proves engine construction is shared: repeated
// Engines calls at one precision return the same instance, and distinct
// precisions are distinct engines.
func TestEnginesCached(t *testing.T) {
	_, _, models := fixtures(t)
	f32 := models.Engines(nn.Float32)
	if models.Engines(nn.Float32) != f32 {
		t.Error("Engines(f32) not cached")
	}
	i8 := models.Engines(nn.Int8)
	if i8 == f32 {
		t.Error("distinct precisions share an engine")
	}
	if f32.Prec != nn.Float32 || i8.Prec != nn.Int8 {
		t.Errorf("engine precisions %v/%v", f32.Prec, i8.Prec)
	}
	if f32.AE.InputDim() != models.RecordDim()*models.Window {
		t.Errorf("AE engine input dim %d, want %d", f32.AE.InputDim(), models.RecordDim()*models.Window)
	}
}
