package asn1lite

import (
	"bytes"
	"testing"
)

type pair struct{ A, B uint64 }

func (p *pair) MarshalTLV(e *Encoder) {
	e.PutUint(1, p.A)
	e.PutUint(2, p.B)
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	p := &pair{A: 7, B: 1 << 40}
	want := Marshal(p)
	if got := AppendMarshal(nil, p); !bytes.Equal(got, want) {
		t.Errorf("AppendMarshal = %x, want %x", got, want)
	}
	got := AppendMarshal([]byte{0xAA}, p)
	if len(got) == 0 || got[0] != 0xAA || !bytes.Equal(got[1:], want) {
		t.Errorf("AppendMarshal with prefix = %x", got)
	}
}

// TestPutNestedReuse proves the recycled child encoder produces the same
// bytes as fresh encoders, including for re-entrant use of the outer
// encoder inside the nested closure.
func TestPutNestedReuse(t *testing.T) {
	var reused Encoder
	for round := 0; round < 3; round++ {
		reused.Reset()
		reused.PutNested(1, func(inner *Encoder) {
			inner.PutUint(1, uint64(round))
			inner.PutNested(2, func(deeper *Encoder) {
				deeper.PutString(1, "deep")
			})
		})
		// Re-entrant: the closure encodes a sibling through the OUTER
		// encoder while the child is detached.
		reused.PutNested(3, func(inner *Encoder) {
			reused.PutUint(4, 99)
			inner.PutBool(1, true)
		})

		var fresh Encoder
		fresh.PutNested(1, func(inner *Encoder) {
			inner.PutUint(1, uint64(round))
			inner.PutNested(2, func(deeper *Encoder) {
				deeper.PutString(1, "deep")
			})
		})
		fresh.PutNested(3, func(inner *Encoder) {
			fresh.PutUint(4, 99)
			inner.PutBool(1, true)
		})
		if !bytes.Equal(reused.Bytes(), fresh.Bytes()) {
			t.Fatalf("round %d: reused %x != fresh %x", round, reused.Bytes(), fresh.Bytes())
		}
	}
}

func TestPutNestedZeroAllocWhenWarm(t *testing.T) {
	var e Encoder
	p := &pair{A: 1, B: 2}
	e.PutMessage(1, p) // warm the child encoder
	if allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		e.PutMessage(1, p)
	}); allocs != 0 {
		t.Errorf("warm PutMessage = %.1f allocs/op, want 0", allocs)
	}
}

func TestDecoderReset(t *testing.T) {
	data1 := Marshal(&pair{A: 1, B: 2})
	data2 := Marshal(&pair{A: 3, B: 4})
	var d Decoder
	for i, tc := range []struct {
		data []byte
		want pair
	}{{data1, pair{1, 2}}, {data2, pair{3, 4}}, {data1, pair{1, 2}}} {
		d.Reset(tc.data)
		var got pair
		for d.Next() {
			switch d.Tag() {
			case 1:
				got.A, _ = d.Uint()
			case 2:
				got.B, _ = d.Uint()
			}
		}
		if err := d.Err(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("step %d: got %+v, want %+v", i, got, tc.want)
		}
	}
	// Reset after an error clears the error state.
	d.Reset([]byte{0xff})
	for d.Next() {
	}
	if d.Err() == nil {
		t.Fatal("expected error on truncated input")
	}
	d.Reset(data1)
	if !d.Next() || d.Err() != nil {
		t.Error("Reset did not clear decoder error state")
	}
}
