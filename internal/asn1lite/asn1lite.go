// Package asn1lite implements a compact, deterministic tag-length-value
// (TLV) codec used by every protocol package in this repository (RRC, NAS,
// F1AP, NGAP, E2AP, E2SM).
//
// The real O-RAN and 3GPP protocols are specified in ASN.1 and encoded with
// aligned PER. This repository substitutes a small TLV encoding with the
// same structural properties — typed fields, nesting, extensibility by tag,
// strict bounds checking on decode — so that the framework exercises a
// realistic encode/decode path without an external ASN.1 compiler (see
// DESIGN.md §1).
//
// Wire format: each item is
//
//	tag    uvarint
//	length uvarint
//	value  length bytes
//
// Value interpretation (uint, zigzag int, UTF-8 string, raw bytes, nested
// TLV sequence) is a contract between the encoder and decoder of a given
// message type, exactly as with ASN.1 field types.
package asn1lite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding limits. Decoders reject anything beyond these bounds so a
// malformed or adversarial frame cannot cause pathological allocation.
const (
	// MaxValueLen bounds the length of a single TLV value.
	MaxValueLen = 1 << 24
	// MaxDepth bounds nesting of TLV sequences.
	MaxDepth = 32
)

// Errors returned by the decoder. All decode failures wrap one of these, so
// callers can classify with errors.Is.
var (
	ErrTruncated = errors.New("asn1lite: truncated input")
	ErrOversize  = errors.New("asn1lite: value exceeds size bound")
	ErrBadValue  = errors.New("asn1lite: malformed value")
	ErrTooDeep   = errors.New("asn1lite: nesting too deep")
)

// Marshaler is implemented by message types that can append themselves to an
// Encoder.
type Marshaler interface {
	MarshalTLV(e *Encoder)
}

// Unmarshaler is implemented by message types that can parse themselves from
// a Decoder positioned at the start of their field sequence.
type Unmarshaler interface {
	UnmarshalTLV(d *Decoder) error
}

// Marshal encodes m into a fresh byte slice.
func Marshal(m Marshaler) []byte {
	var e Encoder
	m.MarshalTLV(&e)
	return e.Bytes()
}

// AppendMarshal appends m's encoding to dst and returns the extended
// slice. It is the buffer-reusing alternative to Marshal for hot paths:
// once dst has grown to steady-state capacity, the encode itself
// allocates nothing (the Encoder may still escape through the interface
// call; callers needing a strict zero-alloc guarantee should hold a
// long-lived Encoder or use a package-level helper with a concrete
// MarshalTLV call, as e2ap.AppendEncode does).
func AppendMarshal(dst []byte, m Marshaler) []byte {
	e := NewEncoder(dst)
	m.MarshalTLV(&e)
	return e.buf
}

// Unmarshal decodes data into m.
func Unmarshal(data []byte, m Unmarshaler) error {
	d := NewDecoder(data)
	return m.UnmarshalTLV(d)
}

// An Encoder builds a TLV byte sequence. The zero value is ready to use.
type Encoder struct {
	buf []byte
	// child is the nested encoder reused across PutNested calls, so
	// SEQUENCE-typed fields stop costing one Encoder + buffer per call
	// once the deepest nesting level has been visited.
	child *Encoder
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
// Returning a value (not a pointer) lets callers keep the encoder on the
// stack for allocation-free append-style encoding.
func NewEncoder(buf []byte) Encoder { return Encoder{buf: buf} }

// Bytes returns the encoded sequence. The returned slice aliases the
// encoder's buffer; it remains valid until the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder for reuse, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) putHeader(tag uint32, length int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(tag))
	e.buf = binary.AppendUvarint(e.buf, uint64(length))
}

// PutUint appends an unsigned integer field.
func (e *Encoder) PutUint(tag uint32, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.putHeader(tag, n)
	e.buf = append(e.buf, tmp[:n]...)
}

// PutInt appends a signed integer field using zigzag encoding.
func (e *Encoder) PutInt(tag uint32, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.putHeader(tag, n)
	e.buf = append(e.buf, tmp[:n]...)
}

// PutFloat appends a float64 field as its IEEE-754 bit pattern.
func (e *Encoder) PutFloat(tag uint32, v float64) {
	e.putHeader(tag, 8)
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// PutBool appends a boolean field (one byte, 0 or 1).
func (e *Encoder) PutBool(tag uint32, v bool) {
	e.putHeader(tag, 1)
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutString appends a UTF-8 string field.
func (e *Encoder) PutString(tag uint32, s string) {
	e.putHeader(tag, len(s))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a raw byte-string field.
func (e *Encoder) PutBytes(tag uint32, b []byte) {
	e.putHeader(tag, len(b))
	e.buf = append(e.buf, b...)
}

// PutNested appends a nested TLV sequence produced by fn. It is the
// encoding used for SEQUENCE-typed fields. The nested encoder is reused
// across calls (detached while fn runs, so re-entrant use of e inside fn
// stays correct), making repeated SEQUENCE fields allocation-free after
// the first call.
func (e *Encoder) PutNested(tag uint32, fn func(*Encoder)) {
	inner := e.child
	e.child = nil
	if inner == nil {
		inner = new(Encoder)
	}
	inner.Reset()
	fn(inner)
	e.PutBytes(tag, inner.buf)
	e.child = inner
}

// PutMessage appends a nested field holding m's encoding.
func (e *Encoder) PutMessage(tag uint32, m Marshaler) {
	e.PutNested(tag, m.MarshalTLV)
}

// A Decoder iterates over a TLV byte sequence. Typical use:
//
//	d := asn1lite.NewDecoder(data)
//	for d.Next() {
//		switch d.Tag() {
//		case tagID:
//			id, err = d.Uint()
//		...
//		}
//	}
//	if err := d.Err(); err != nil { ... }
//
// Unknown tags are skipped, giving the same forward-compatibility as ASN.1
// extension markers.
type Decoder struct {
	data  []byte
	off   int
	tag   uint32
	val   []byte
	err   error
	depth int
}

// NewDecoder returns a Decoder reading from data. The decoder does not copy
// data; callers must not mutate it during decoding.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

// Reset repoints the decoder at data and clears all iteration state, so a
// long-lived (stack- or pool-held) decoder can be reused across messages
// without reallocating. The zero Decoder is also valid; Reset makes it
// read data.
func (d *Decoder) Reset(data []byte) {
	*d = Decoder{data: data}
}

// Next advances to the next field. It returns false at end of input or on
// error; check Err afterwards.
func (d *Decoder) Next() bool {
	if d.err != nil || d.off >= len(d.data) {
		return false
	}
	tag, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 || tag > math.MaxUint32 {
		d.err = fmt.Errorf("reading tag at offset %d: %w", d.off, ErrTruncated)
		return false
	}
	d.off += n
	length, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("reading length of tag %d: %w", tag, ErrTruncated)
		return false
	}
	if length > MaxValueLen {
		d.err = fmt.Errorf("tag %d length %d: %w", tag, length, ErrOversize)
		return false
	}
	d.off += n
	if uint64(len(d.data)-d.off) < length {
		d.err = fmt.Errorf("tag %d value needs %d bytes, have %d: %w",
			tag, length, len(d.data)-d.off, ErrTruncated)
		return false
	}
	d.tag = uint32(tag)
	d.val = d.data[d.off : d.off+int(length)]
	d.off += int(length)
	return true
}

// Err returns the first error encountered while decoding.
func (d *Decoder) Err() error { return d.err }

// Tag returns the tag of the current field.
func (d *Decoder) Tag() uint32 { return d.tag }

// RawValue returns the undecoded bytes of the current field's value. The
// slice aliases the decoder's input.
func (d *Decoder) RawValue() []byte { return d.val }

func (d *Decoder) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return err
}

// Uint decodes the current field as an unsigned integer.
func (d *Decoder) Uint() (uint64, error) {
	v, n := binary.Uvarint(d.val)
	if n <= 0 || n != len(d.val) {
		return 0, d.fail(fmt.Errorf("tag %d as uint: %w", d.tag, ErrBadValue))
	}
	return v, nil
}

// Int decodes the current field as a signed (zigzag) integer.
func (d *Decoder) Int() (int64, error) {
	v, n := binary.Varint(d.val)
	if n <= 0 || n != len(d.val) {
		return 0, d.fail(fmt.Errorf("tag %d as int: %w", d.tag, ErrBadValue))
	}
	return v, nil
}

// Float decodes the current field as a float64.
func (d *Decoder) Float() (float64, error) {
	if len(d.val) != 8 {
		return 0, d.fail(fmt.Errorf("tag %d as float: %w", d.tag, ErrBadValue))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(d.val)), nil
}

// Bool decodes the current field as a boolean.
func (d *Decoder) Bool() (bool, error) {
	if len(d.val) != 1 || d.val[0] > 1 {
		return false, d.fail(fmt.Errorf("tag %d as bool: %w", d.tag, ErrBadValue))
	}
	return d.val[0] == 1, nil
}

// String decodes the current field as a string (copies the bytes).
func (d *Decoder) String() (string, error) {
	return string(d.val), nil
}

// Bytes decodes the current field as a byte string (copies the bytes).
func (d *Decoder) Bytes() ([]byte, error) {
	out := make([]byte, len(d.val))
	copy(out, d.val)
	return out, nil
}

// Nested returns a sub-decoder over the current field's value, for
// SEQUENCE-typed fields.
func (d *Decoder) Nested() (*Decoder, error) {
	if d.depth+1 > MaxDepth {
		return nil, d.fail(fmt.Errorf("tag %d: %w", d.tag, ErrTooDeep))
	}
	return &Decoder{data: d.val, depth: d.depth + 1}, nil
}

// Message decodes the current field's value into m via its Unmarshaler.
func (d *Decoder) Message(m Unmarshaler) error {
	sub, err := d.Nested()
	if err != nil {
		return err
	}
	if err := m.UnmarshalTLV(sub); err != nil {
		return d.fail(err)
	}
	return nil
}
