package asn1lite

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	var e Encoder
	for i, v := range vals {
		e.PutUint(uint32(i), v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		if !d.Next() {
			t.Fatalf("Next()=false at field %d: %v", i, d.Err())
		}
		if d.Tag() != uint32(i) {
			t.Fatalf("tag = %d, want %d", d.Tag(), i)
		}
		got, err := d.Uint()
		if err != nil {
			t.Fatalf("Uint: %v", err)
		}
		if got != want {
			t.Errorf("field %d = %d, want %d", i, got, want)
		}
	}
	if d.Next() {
		t.Error("Next() = true after last field")
	}
	if d.Err() != nil {
		t.Errorf("Err() = %v", d.Err())
	}
}

func TestIntRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -12345}
	var e Encoder
	for _, v := range vals {
		e.PutInt(7, v)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range vals {
		if !d.Next() {
			t.Fatalf("unexpected end: %v", d.Err())
		}
		got, err := d.Int()
		if err != nil {
			t.Fatalf("Int: %v", err)
		}
		if got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	var e Encoder
	for _, v := range vals {
		e.PutFloat(3, v)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range vals {
		if !d.Next() {
			t.Fatalf("unexpected end: %v", d.Err())
		}
		got, err := d.Float()
		if err != nil {
			t.Fatalf("Float: %v", err)
		}
		if got != want {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestBoolStringBytes(t *testing.T) {
	var e Encoder
	e.PutBool(1, true)
	e.PutBool(2, false)
	e.PutString(3, "hello 世界")
	e.PutBytes(4, []byte{0xde, 0xad})
	e.PutBytes(5, nil)

	d := NewDecoder(e.Bytes())
	d.Next()
	if v, _ := d.Bool(); !v {
		t.Error("field 1 = false, want true")
	}
	d.Next()
	if v, _ := d.Bool(); v {
		t.Error("field 2 = true, want false")
	}
	d.Next()
	if s, _ := d.String(); s != "hello 世界" {
		t.Errorf("field 3 = %q", s)
	}
	d.Next()
	if b, _ := d.Bytes(); !bytes.Equal(b, []byte{0xde, 0xad}) {
		t.Errorf("field 4 = %x", b)
	}
	d.Next()
	if b, _ := d.Bytes(); len(b) != 0 {
		t.Errorf("field 5 = %x, want empty", b)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestNested(t *testing.T) {
	var e Encoder
	e.PutNested(10, func(inner *Encoder) {
		inner.PutUint(1, 42)
		inner.PutNested(2, func(inner2 *Encoder) {
			inner2.PutString(1, "deep")
		})
	})
	d := NewDecoder(e.Bytes())
	if !d.Next() || d.Tag() != 10 {
		t.Fatalf("outer: tag=%d err=%v", d.Tag(), d.Err())
	}
	inner, err := d.Nested()
	if err != nil {
		t.Fatal(err)
	}
	if !inner.Next() {
		t.Fatal("inner field 1 missing")
	}
	if v, _ := inner.Uint(); v != 42 {
		t.Errorf("inner uint = %d", v)
	}
	if !inner.Next() || inner.Tag() != 2 {
		t.Fatal("inner field 2 missing")
	}
	inner2, err := inner.Nested()
	if err != nil {
		t.Fatal(err)
	}
	if !inner2.Next() {
		t.Fatal("inner2 field missing")
	}
	if s, _ := inner2.String(); s != "deep" {
		t.Errorf("deep = %q", s)
	}
}

func TestSkipUnknownTags(t *testing.T) {
	var e Encoder
	e.PutUint(1, 10)
	e.PutString(99, "future extension")
	e.PutUint(2, 20)

	d := NewDecoder(e.Bytes())
	var got []uint64
	for d.Next() {
		switch d.Tag() {
		case 1, 2:
			v, err := d.Uint()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("got %v, want [10 20]", got)
	}
}

func TestTruncatedInput(t *testing.T) {
	var e Encoder
	e.PutString(1, "hello")
	full := e.Bytes()
	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		for d.Next() {
		}
		if d.Err() == nil {
			// Cutting exactly at a field boundary yields a clean end,
			// but "hello" is a single field so any cut must error.
			t.Errorf("cut=%d: no error on truncated input", cut)
		} else if !errors.Is(d.Err(), ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want ErrTruncated", cut, d.Err())
		}
	}
}

func TestOversizeRejected(t *testing.T) {
	// Hand-craft a header claiming a huge length.
	var e Encoder
	e.buf = append(e.buf, 1)            // tag 1
	e.buf = appendUvarint(e.buf, 1<<30) // length 1 GiB
	e.buf = append(e.buf, make([]byte, 8)...)
	d := NewDecoder(e.buf)
	if d.Next() {
		t.Fatal("Next() = true for oversize value")
	}
	if !errors.Is(d.Err(), ErrOversize) {
		t.Errorf("err = %v, want ErrOversize", d.Err())
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestBadValueTypes(t *testing.T) {
	var e Encoder
	e.PutString(1, "not a number")
	d := NewDecoder(e.Bytes())
	d.Next()
	if _, err := d.Uint(); !errors.Is(err, ErrBadValue) {
		t.Errorf("Uint on string: err = %v, want ErrBadValue", err)
	}

	e.Reset()
	e.PutBytes(1, []byte{1, 2, 3})
	d = NewDecoder(e.Bytes())
	d.Next()
	if _, err := d.Float(); !errors.Is(err, ErrBadValue) {
		t.Errorf("Float on 3 bytes: err = %v, want ErrBadValue", err)
	}

	e.Reset()
	e.PutBytes(1, []byte{7})
	d = NewDecoder(e.Bytes())
	d.Next()
	if _, err := d.Bool(); !errors.Is(err, ErrBadValue) {
		t.Errorf("Bool on byte 7: err = %v, want ErrBadValue", err)
	}
}

func TestDepthLimit(t *testing.T) {
	// Build MaxDepth+2 nested sequences.
	inner := Encoder{}
	inner.PutUint(1, 1)
	buf := inner.Bytes()
	for i := 0; i < MaxDepth+2; i++ {
		var e Encoder
		e.PutBytes(1, buf)
		buf = append([]byte(nil), e.Bytes()...)
	}
	d := NewDecoder(buf)
	var err error
	for {
		if !d.Next() {
			err = d.Err()
			break
		}
		var sub *Decoder
		sub, err = d.Nested()
		if err != nil {
			break
		}
		d = sub
	}
	if !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

type testMsg struct {
	ID   uint64
	Name string
	Tags []uint64
}

func (m *testMsg) MarshalTLV(e *Encoder) {
	e.PutUint(1, m.ID)
	e.PutString(2, m.Name)
	for _, tag := range m.Tags {
		e.PutUint(3, tag)
	}
}

func (m *testMsg) UnmarshalTLV(d *Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.ID = v
		case 2:
			s, err := d.String()
			if err != nil {
				return err
			}
			m.Name = s
		case 3:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Tags = append(m.Tags, v)
		}
	}
	return d.Err()
}

func TestMarshalUnmarshal(t *testing.T) {
	in := &testMsg{ID: 9, Name: "ue-1", Tags: []uint64{4, 5, 6}}
	data := Marshal(in)
	var out testMsg
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Name != in.Name || len(out.Tags) != 3 {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestMessageField(t *testing.T) {
	in := &testMsg{ID: 3, Name: "nested"}
	var e Encoder
	e.PutMessage(8, in)
	d := NewDecoder(e.Bytes())
	if !d.Next() || d.Tag() != 8 {
		t.Fatalf("missing message field: %v", d.Err())
	}
	var out testMsg
	if err := d.Message(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 3 || out.Name != "nested" {
		t.Errorf("got %+v", out)
	}
}

// Property: any (tag, value) combination round-trips for every scalar type.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(tag uint32, u uint64, i int64, fl float64, b bool, s string, raw []byte) bool {
		var e Encoder
		e.PutUint(tag, u)
		e.PutInt(tag, i)
		e.PutFloat(tag, fl)
		e.PutBool(tag, b)
		e.PutString(tag, s)
		e.PutBytes(tag, raw)
		d := NewDecoder(e.Bytes())

		if !d.Next() {
			return false
		}
		gu, err := d.Uint()
		if err != nil || gu != u || d.Tag() != tag {
			return false
		}
		if !d.Next() {
			return false
		}
		gi, err := d.Int()
		if err != nil || gi != i {
			return false
		}
		if !d.Next() {
			return false
		}
		gf, err := d.Float()
		if err != nil || (gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl))) {
			return false
		}
		if !d.Next() {
			return false
		}
		gb, err := d.Bool()
		if err != nil || gb != b {
			return false
		}
		if !d.Next() {
			return false
		}
		gs, err := d.String()
		if err != nil || gs != s {
			return false
		}
		if !d.Next() {
			return false
		}
		graw, err := d.Bytes()
		if err != nil || !bytes.Equal(graw, raw) {
			return false
		}
		return d.Err() == nil && !d.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics and never reads out of bounds on
// arbitrary input bytes.
func TestQuickDecoderRobust(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		for d.Next() {
			switch d.Tag() % 5 {
			case 0:
				d.Uint()
			case 1:
				d.Int()
			case 2:
				d.Bool()
			case 3:
				d.String()
			case 4:
				if sub, err := d.Nested(); err == nil {
					for sub.Next() {
					}
				}
			}
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.PutUint(1, 5)
	if e.Len() == 0 {
		t.Fatal("Len() = 0 after Put")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len() = %d after Reset", e.Len())
	}
	e.PutUint(2, 6)
	d := NewDecoder(e.Bytes())
	if !d.Next() || d.Tag() != 2 {
		t.Error("stale data after Reset")
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	b.ReportAllocs()
	var e Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutUint(1, uint64(i))
		e.PutString(2, "RRCSetupRequest")
		e.PutUint(3, 0x4601)
		e.PutBool(4, true)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	var e Encoder
	e.PutUint(1, 123456)
	e.PutString(2, "RRCSetupRequest")
	e.PutUint(3, 0x4601)
	e.PutBool(4, true)
	data := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(data)
		for d.Next() {
		}
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}
