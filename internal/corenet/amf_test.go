package corenet

import (
	"testing"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/ngap"
)

var testK = [nas.KeySize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

const testSUPI = cell.SUPI("imsi-001010000000001")

func newTestAMF() *AMF {
	a := NewAMF(1)
	a.AddSubscriber(Subscriber{SUPI: testSUPI, K: testK})
	return a
}

func uplink(t *testing.T, a *AMF, ranUE uint64, m nas.Message) []*ngap.Message {
	t.Helper()
	out, err := a.HandleNGAP(&ngap.Message{Type: ngap.TypeUplinkNASTransport, RANUEID: ranUE, NASPDU: nas.Encode(m)})
	if err != nil {
		t.Fatalf("HandleNGAP(%s): %v", m.Type(), err)
	}
	return out
}

func nasOf(t *testing.T, m *ngap.Message) nas.Message {
	t.Helper()
	decoded, err := nas.Decode(m.NASPDU)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

func suciIdentity() nas.MobileIdentity {
	suci, _ := cell.SUCIFromSUPI(testSUPI, 0)
	return nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}
}

// runRegistration drives a full benign registration and returns the GUTI.
func runRegistration(t *testing.T, a *AMF, ranUE uint64, capability uint32) cell.GUTI {
	t.Helper()
	out := uplink(t, a, ranUE, &nas.RegistrationRequest{Identity: suciIdentity(), Capability: capability})
	auth, ok := nasOf(t, out[0]).(*nas.AuthenticationRequest)
	if !ok {
		t.Fatalf("expected AuthenticationRequest, got %T", nasOf(t, out[0]))
	}
	sqn, ok := a.SQNFor(ranUE)
	if !ok {
		t.Fatal("no SQN for pending challenge")
	}
	if !nas.VerifyAUTN(testK, auth.RAND, sqn, auth.AUTN) {
		t.Fatal("AMF AUTN fails UE-side verification")
	}
	out = uplink(t, a, ranUE, &nas.AuthenticationResponse{RES: nas.DeriveRES(testK, auth.RAND)})
	smc, ok := nasOf(t, out[0]).(*nas.SecurityModeCommand)
	if !ok {
		t.Fatalf("expected SecurityModeCommand, got %T", nasOf(t, out[0]))
	}
	_ = smc
	out = uplink(t, a, ranUE, &nas.SecurityModeComplete{})
	if len(out) != 2 || out[0].Type != ngap.TypeInitialContextSetupRequest {
		t.Fatalf("post-SMC messages = %+v", out)
	}
	accept, ok := nasOf(t, out[1]).(*nas.RegistrationAccept)
	if !ok {
		t.Fatalf("expected RegistrationAccept, got %T", nasOf(t, out[1]))
	}
	uplink(t, a, ranUE, &nas.RegistrationComplete{})
	return accept.GUTI
}

func TestBenignRegistration(t *testing.T) {
	a := newTestAMF()
	guti := runRegistration(t, a, 1, CapAll)
	if guti.TMSI == cell.InvalidTMSI {
		t.Error("no TMSI allocated")
	}
	if supi, ok := a.LookupTMSI(guti.TMSI); !ok || supi != testSUPI {
		t.Errorf("TMSI lookup = %q, %v", supi, ok)
	}
}

func TestStrongestAlgorithmsSelected(t *testing.T) {
	a := newTestAMF()
	out := uplink(t, a, 1, &nas.RegistrationRequest{Identity: suciIdentity(), Capability: CapAll})
	auth := nasOf(t, out[0]).(*nas.AuthenticationRequest)
	out = uplink(t, a, 1, &nas.AuthenticationResponse{RES: nas.DeriveRES(testK, auth.RAND)})
	smc := nasOf(t, out[0]).(*nas.SecurityModeCommand)
	if smc.CipherAlg != cell.NEA3 || smc.IntegAlg != cell.NIA3 {
		t.Errorf("selected %s/%s, want NEA3/NIA3", smc.CipherAlg, smc.IntegAlg)
	}
}

func TestBidDownSelectsNullAlgorithms(t *testing.T) {
	// The Null Cipher & Integrity attack: UE claims only null algorithms.
	a := newTestAMF()
	out := uplink(t, a, 1, &nas.RegistrationRequest{Identity: suciIdentity(), Capability: CapNEA0 | CapNIA0})
	auth := nasOf(t, out[0]).(*nas.AuthenticationRequest)
	out = uplink(t, a, 1, &nas.AuthenticationResponse{RES: nas.DeriveRES(testK, auth.RAND)})
	smc := nasOf(t, out[0]).(*nas.SecurityModeCommand)
	if !smc.CipherAlg.Null() || !smc.IntegAlg.Null() {
		t.Errorf("selected %s/%s, want NEA0/NIA0", smc.CipherAlg, smc.IntegAlg)
	}
}

func TestRequireStrongSecurityRejectsBidDown(t *testing.T) {
	a := newTestAMF()
	a.RequireStrongSecurity = true
	out := uplink(t, a, 1, &nas.RegistrationRequest{Identity: suciIdentity(), Capability: CapNEA0 | CapNIA0})
	auth := nasOf(t, out[0]).(*nas.AuthenticationRequest)
	out = uplink(t, a, 1, &nas.AuthenticationResponse{RES: nas.DeriveRES(testK, auth.RAND)})
	if _, ok := nasOf(t, out[0]).(*nas.RegistrationReject); !ok {
		t.Errorf("expected RegistrationReject, got %T", nasOf(t, out[0]))
	}
}

func TestUnknownSubscriberRejected(t *testing.T) {
	a := newTestAMF()
	suci, _ := cell.SUCIFromSUPI("imsi-001019999999999", 0)
	out := uplink(t, a, 1, &nas.RegistrationRequest{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}})
	if _, ok := nasOf(t, out[0]).(*nas.RegistrationReject); !ok {
		t.Errorf("expected RegistrationReject, got %T", nasOf(t, out[0]))
	}
}

func TestConcealedSUCIRejected(t *testing.T) {
	a := newTestAMF()
	suci, _ := cell.SUCIFromSUPI(testSUPI, 1)
	out := uplink(t, a, 1, &nas.RegistrationRequest{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}})
	if _, ok := nasOf(t, out[0]).(*nas.RegistrationReject); !ok {
		t.Errorf("expected RegistrationReject, got %T", nasOf(t, out[0]))
	}
}

func TestUnknownGUTITriggersIdentityRequest(t *testing.T) {
	a := newTestAMF()
	out := uplink(t, a, 1, &nas.RegistrationRequest{
		Identity: nas.MobileIdentity{Type: nas.IdentityGUTI, GUTI: cell.GUTI{TMSI: 0xDEAD}},
	})
	idReq, ok := nasOf(t, out[0]).(*nas.IdentityRequest)
	if !ok {
		t.Fatalf("expected IdentityRequest, got %T", nasOf(t, out[0]))
	}
	if idReq.Requested != nas.IdentitySUCI {
		t.Errorf("requested %v", idReq.Requested)
	}
	// UE answers with its SUCI; registration proceeds to auth.
	out = uplink(t, a, 1, &nas.IdentityResponse{Identity: suciIdentity()})
	if _, ok := nasOf(t, out[0]).(*nas.AuthenticationRequest); !ok {
		t.Errorf("expected AuthenticationRequest after identity, got %T", nasOf(t, out[0]))
	}
}

func TestKnownGUTISkipsIdentity(t *testing.T) {
	a := newTestAMF()
	guti := runRegistration(t, a, 1, CapAll)
	a.ReleaseUE(1)
	out := uplink(t, a, 2, &nas.RegistrationRequest{
		Identity: nas.MobileIdentity{Type: nas.IdentityGUTI, GUTI: guti},
	})
	if _, ok := nasOf(t, out[0]).(*nas.AuthenticationRequest); !ok {
		t.Errorf("expected AuthenticationRequest, got %T", nasOf(t, out[0]))
	}
}

func TestWrongRESRejected(t *testing.T) {
	a := newTestAMF()
	uplink(t, a, 1, &nas.RegistrationRequest{Identity: suciIdentity(), Capability: CapAll})
	out := uplink(t, a, 1, &nas.AuthenticationResponse{RES: []byte("wrong")})
	if _, ok := nasOf(t, out[0]).(*nas.RegistrationReject); !ok {
		t.Errorf("expected RegistrationReject, got %T", nasOf(t, out[0]))
	}
}

func TestDeregistration(t *testing.T) {
	a := newTestAMF()
	runRegistration(t, a, 1, CapAll)
	out := uplink(t, a, 1, &nas.DeregistrationRequest{SwitchOff: false})
	if len(out) != 2 {
		t.Fatalf("got %d messages", len(out))
	}
	if _, ok := nasOf(t, out[0]).(*nas.DeregistrationAccept); !ok {
		t.Errorf("expected DeregistrationAccept, got %T", nasOf(t, out[0]))
	}
	if out[1].Type != ngap.TypeUEContextReleaseCommand {
		t.Errorf("second message = %s", out[1].Type)
	}
}

func TestServiceRequest(t *testing.T) {
	a := newTestAMF()
	guti := runRegistration(t, a, 1, CapAll)
	out := uplink(t, a, 2, &nas.ServiceRequest{TMSI: guti.TMSI})
	if _, ok := nasOf(t, out[0]).(*nas.ServiceAccept); !ok {
		t.Errorf("expected ServiceAccept, got %T", nasOf(t, out[0]))
	}
	out = uplink(t, a, 3, &nas.ServiceRequest{TMSI: 0xBAD})
	if _, ok := nasOf(t, out[0]).(*nas.RegistrationReject); !ok {
		t.Errorf("expected RegistrationReject for unknown TMSI, got %T", nasOf(t, out[0]))
	}
}

func TestReregistrationRotatesTMSI(t *testing.T) {
	a := newTestAMF()
	g1 := runRegistration(t, a, 1, CapAll)
	a.ReleaseUE(1)
	g2 := runRegistration(t, a, 2, CapAll)
	if g1.TMSI == g2.TMSI {
		t.Error("TMSI not rotated on re-registration")
	}
	if _, ok := a.LookupTMSI(g1.TMSI); ok {
		t.Error("stale TMSI binding survives re-registration")
	}
}

func TestMalformedNASRejected(t *testing.T) {
	a := newTestAMF()
	_, err := a.HandleNGAP(&ngap.Message{Type: ngap.TypeUplinkNASTransport, RANUEID: 1, NASPDU: []byte{0xFF}})
	if err == nil {
		t.Error("malformed NAS accepted")
	}
}
