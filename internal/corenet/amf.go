// Package corenet implements the 5G core subset behind the simulated gNB:
// an AMF (Access and Mobility Management Function) with a subscriber
// database, 5G-AKA primary authentication, NAS security-mode control, and
// GUTI/TMSI allocation. The CU relays NAS PDUs to it over NGAP
// (internal/ngap), completing the UE ↔ RAN ↔ core path of Figure 1.
package corenet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/ngap"
)

// Subscriber is one provisioned SIM.
type Subscriber struct {
	SUPI cell.SUPI
	K    [nas.KeySize]byte
}

// amfUE is the per-UE context at the AMF.
type amfUE struct {
	amfUEID uint64
	ranUEID uint64
	supi    cell.SUPI
	guti    cell.GUTI
	state   nas.Machine

	// pending challenge
	rand [16]byte
	sqn  uint64

	capability uint32
	cipher     cell.CipherAlg
	integ      cell.IntegAlg
}

// AMF is the core-network control function.
type AMF struct {
	mu      sync.Mutex
	subs    map[cell.SUPI]Subscriber
	byTMSI  map[cell.TMSI]cell.SUPI
	byRAN   map[uint64]*amfUE
	nextAMF uint64
	nextSQN uint64
	rng     *rand.Rand

	// RequireStrongSecurity refuses to select null algorithms even for
	// UEs that only advertise them (the closed-loop hardening action).
	RequireStrongSecurity bool
}

// NewAMF creates an AMF; seed drives RAND and TMSI generation.
func NewAMF(seed int64) *AMF {
	return &AMF{
		subs:   make(map[cell.SUPI]Subscriber),
		byTMSI: make(map[cell.TMSI]cell.SUPI),
		byRAN:  make(map[uint64]*amfUE),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SetRequireStrongSecurity toggles the null-algorithm refusal at runtime
// (the closed-loop hardening action). Safe for concurrent use.
func (a *AMF) SetRequireStrongSecurity(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.RequireStrongSecurity = on
}

// AddSubscriber provisions a SIM.
func (a *AMF) AddSubscriber(s Subscriber) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subs[s.SUPI] = s
}

// SubscriberCount reports provisioned SIMs.
func (a *AMF) SubscriberCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.subs)
}

// algorithm capability bits, matching the UE capability bitmask layout:
// bit i set = NEA_i supported, bit 8+i = NIA_i supported.
const (
	CapNEA0 = 1 << 0
	CapNEA1 = 1 << 1
	CapNEA2 = 1 << 2
	CapNEA3 = 1 << 3
	CapNIA0 = 1 << 8
	CapNIA1 = 1 << 9
	CapNIA2 = 1 << 10
	CapNIA3 = 1 << 11
)

// CapAll advertises every algorithm, the normal commodity-phone case.
const CapAll = CapNEA0 | CapNEA1 | CapNEA2 | CapNEA3 | CapNIA0 | CapNIA1 | CapNIA2 | CapNIA3

// selectAlgorithms picks the strongest pair the UE claims to support.
func selectAlgorithms(capability uint32) (cell.CipherAlg, cell.IntegAlg) {
	cipher := cell.NEA0
	for i := 3; i >= 1; i-- {
		if capability&(1<<uint(i)) != 0 {
			cipher = cell.CipherAlg(i)
			break
		}
	}
	integ := cell.NIA0
	for i := 3; i >= 1; i-- {
		if capability&(1<<uint(8+i)) != 0 {
			integ = cell.IntegAlg(i)
			break
		}
	}
	return cipher, integ
}

// HandleNGAP processes one uplink NGAP message and returns the downlink
// NGAP messages the AMF emits in response (possibly none).
func (a *AMF) HandleNGAP(msg *ngap.Message) ([]*ngap.Message, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	switch msg.Type {
	case ngap.TypeInitialUEMessage, ngap.TypeUplinkNASTransport:
		nasMsg, err := nas.Decode(msg.NASPDU)
		if err != nil {
			return nil, fmt.Errorf("corenet: NAS in %s: %w", msg.Type, err)
		}
		return a.handleNAS(msg.RANUEID, nasMsg)
	case ngap.TypeInitialContextSetupResponse, ngap.TypeUEContextReleaseComplete:
		return nil, nil
	default:
		return nil, fmt.Errorf("corenet: unexpected NGAP %s", msg.Type)
	}
}

func (a *AMF) ue(ranUEID uint64) *amfUE {
	u, ok := a.byRAN[ranUEID]
	if !ok {
		a.nextAMF++
		u = &amfUE{amfUEID: a.nextAMF, ranUEID: ranUEID}
		a.byRAN[ranUEID] = u
	}
	return u
}

// ReleaseUE drops the AMF context for a RAN UE ID.
func (a *AMF) ReleaseUE(ranUEID uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.byRAN, ranUEID)
}

func (a *AMF) downNAS(u *amfUE, m nas.Message) *ngap.Message {
	return &ngap.Message{
		Type:    ngap.TypeDownlinkNASTransport,
		RANUEID: u.ranUEID,
		AMFUEID: u.amfUEID,
		NASPDU:  nas.Encode(m),
	}
}

func (a *AMF) handleNAS(ranUEID uint64, m nas.Message) ([]*ngap.Message, error) {
	u := a.ue(ranUEID)
	u.state.Observe(m) // track even when out of order; AMF is tolerant

	switch msg := m.(type) {
	case *nas.RegistrationRequest:
		u.capability = msg.Capability
		switch msg.Identity.Type {
		case nas.IdentitySUCI:
			supi, ok := a.resolveSUCI(msg.Identity.SUCI)
			if !ok {
				return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
			}
			u.supi = supi
			return a.challenge(u)
		case nas.IdentityGUTI:
			supi, ok := a.byTMSI[msg.Identity.GUTI.TMSI]
			if !ok {
				// Unknown temporary identity: ask for the permanent one.
				return []*ngap.Message{a.downNAS(u, &nas.IdentityRequest{Requested: nas.IdentitySUCI})}, nil
			}
			u.supi = supi
			return a.challenge(u)
		default:
			return []*ngap.Message{a.downNAS(u, &nas.IdentityRequest{Requested: nas.IdentitySUCI})}, nil
		}

	case *nas.IdentityResponse:
		if msg.Identity.Type != nas.IdentitySUCI {
			return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
		}
		supi, ok := a.resolveSUCI(msg.Identity.SUCI)
		if !ok {
			return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
		}
		u.supi = supi
		return a.challenge(u)

	case *nas.AuthenticationResponse:
		sub, ok := a.subs[u.supi]
		if !ok || !nas.VerifyRES(sub.K, u.rand, msg.RES) {
			return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
		}
		cipher, integ := selectAlgorithms(u.capability)
		if a.RequireStrongSecurity && (cipher.Null() || integ.Null()) {
			return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseSecurityModeRejected})}, nil
		}
		u.cipher, u.integ = cipher, integ
		return []*ngap.Message{a.downNAS(u, &nas.SecurityModeCommand{CipherAlg: cipher, IntegAlg: integ})}, nil

	case *nas.AuthenticationFailure:
		return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil

	case *nas.SecurityModeComplete:
		guti := a.allocateGUTI(u.supi)
		u.guti = guti
		return []*ngap.Message{
			{Type: ngap.TypeInitialContextSetupRequest, RANUEID: u.ranUEID, AMFUEID: u.amfUEID},
			a.downNAS(u, &nas.RegistrationAccept{GUTI: guti}),
		}, nil

	case *nas.SecurityModeReject:
		return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseSecurityModeRejected})}, nil

	case *nas.RegistrationComplete:
		return nil, nil

	case *nas.ServiceRequest:
		if _, ok := a.byTMSI[msg.TMSI]; !ok {
			return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
		}
		return []*ngap.Message{a.downNAS(u, &nas.ServiceAccept{})}, nil

	case *nas.DeregistrationRequest:
		out := []*ngap.Message{
			a.downNAS(u, &nas.DeregistrationAccept{}),
			{Type: ngap.TypeUEContextReleaseCommand, RANUEID: u.ranUEID, AMFUEID: u.amfUEID, Cause: "deregistration"},
		}
		delete(a.byRAN, ranUEID)
		return out, nil

	default:
		return nil, fmt.Errorf("corenet: unexpected uplink NAS %s", m.Type())
	}
}

// challenge issues a fresh 5G-AKA challenge for the UE's SUPI.
func (a *AMF) challenge(u *amfUE) ([]*ngap.Message, error) {
	sub, ok := a.subs[u.supi]
	if !ok {
		return []*ngap.Message{a.downNAS(u, &nas.RegistrationReject{Cause: nas.CauseIllegalUE})}, nil
	}
	a.rng.Read(u.rand[:])
	a.nextSQN++
	u.sqn = a.nextSQN
	autn := nas.Challenge(sub.K, u.rand, u.sqn)
	return []*ngap.Message{a.downNAS(u, &nas.AuthenticationRequest{NgKSI: 0, RAND: u.rand, AUTN: autn})}, nil
}

// SQNFor exposes the sequence number of the pending challenge for a RAN
// UE, letting the (simulated) UE verify AUTN as a real USIM would.
func (a *AMF) SQNFor(ranUEID uint64) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.byRAN[ranUEID]
	if !ok {
		return 0, false
	}
	return u.sqn, true
}

// resolveSUCI de-conceals a SUCI. Only the null scheme is resolvable in
// this model (non-null schemes would require the home-network key).
func (a *AMF) resolveSUCI(suci cell.SUCI) (cell.SUPI, bool) {
	if !suci.NullScheme() {
		return "", false
	}
	supi := cell.SUPI("imsi-" + suci.PLMN.MCC + suci.PLMN.MNC + suci.MSIN)
	if strings.Contains(string(supi), "*") {
		return "", false
	}
	_, ok := a.subs[supi]
	return supi, ok
}

// allocateGUTI assigns a fresh unique TMSI for a SUPI.
func (a *AMF) allocateGUTI(supi cell.SUPI) cell.GUTI {
	// Drop any previous binding for this SUPI.
	for tmsi, owner := range a.byTMSI {
		if owner == supi {
			delete(a.byTMSI, tmsi)
		}
	}
	var tmsi cell.TMSI
	for {
		tmsi = cell.TMSI(a.rng.Uint32())
		if tmsi == cell.InvalidTMSI {
			continue
		}
		if _, taken := a.byTMSI[tmsi]; !taken {
			break
		}
	}
	a.byTMSI[tmsi] = supi
	return cell.GUTI{PLMN: cell.TestPLMN, AMFSetID: 1, TMSI: tmsi}
}

// LookupTMSI resolves a TMSI to its SUPI (diagnostics, tests).
func (a *AMF) LookupTMSI(tmsi cell.TMSI) (cell.SUPI, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	supi, ok := a.byTMSI[tmsi]
	return supi, ok
}
