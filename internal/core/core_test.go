package core

import (
	"context"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/ue"
)

// newTrainedFramework assembles a framework with trained, deployed xApps.
func newTrainedFramework(t *testing.T, auto bool) *Framework {
	t.Helper()
	fw, err := New(Options{
		Seed:         3,
		ReportPeriod: 5 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: 15, Seed: 7},
		AutoRespond:  auto,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fw.Close)

	benign, err := fw.CollectBenign(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(benign); err != nil {
		t.Fatal(err)
	}
	if err := fw.DeployXApps(); err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestEndToEndDetectionAndExplanation(t *testing.T) {
	fw := newTrainedFramework(t, false)

	// Benign traffic must flow silently.
	u := fw.NewUE(ue.Pixel5, 100)
	u.Profile.RetransProb = 0
	if _, err := u.RunSession(fw.GNB); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	select {
	case c := <-fw.Cases():
		t.Fatalf("benign traffic produced case: %+v", c)
	default:
	}

	// Launch a BTS DoS; the pipeline must detect and explain it.
	attacker := fw.NewUE(ue.OAIUE, 101)
	attacker.Profile.RetransProb = 0
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }
	if _, err := attacker.RunBTSDoS(fw.GNB, 8); err != nil {
		t.Fatal(err)
	}

	// The first alerts fire while the flood is still building, so the
	// LLM may initially disagree (those cases go to the human queue);
	// once the storm pattern fills the context window, detector and LLM
	// converge on the classification.
	deadline := time.After(5 * time.Second)
	total := 0
	for {
		select {
		case c := <-fw.Cases():
			total++
			if c.Analysis == nil || c.Analysis.Verdict != llm.VerdictAnomalous {
				continue // ambiguous early case → human review path
			}
			if c.Analysis.TopClass() != llm.ClassBTSDoS {
				t.Errorf("classification = %v, want BTS DoS", c.Analysis.TopClass())
			}
			if !c.Agree || c.NeedsHuman {
				t.Errorf("agreement flags: agree=%v human=%v", c.Agree, c.NeedsHuman)
			}
			if c.Control == nil || c.Control.Action != e2sm.ControlReleaseUE {
				t.Errorf("control = %+v", c.Control)
			}
			if len(c.Analysis.Remediation) == 0 || c.Analysis.Explanation == "" {
				t.Error("analysis lacks explanation/remediation")
			}
			return // success: a fully explained incident
		case <-deadline:
			st := fw.WatchStats()
			t.Fatalf("no anomalous case in %d cases (records=%d windows=%d alerts=%d)",
				total, st.RecordsSeen.Load(), st.WindowsScored.Load(), st.AlertsRaised.Load())
		}
	}
}

func TestClosedLoopAutoResponse(t *testing.T) {
	fw := newTrainedFramework(t, true)

	attacker := fw.NewUE(ue.OAIUE, 200)
	attacker.Profile.RetransProb = 0
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }
	if _, err := attacker.RunBTSDoS(fw.GNB, 8); err != nil {
		t.Fatal(err)
	}

	// The closed loop must fire at least one control action.
	deadline := time.Now().Add(5 * time.Second)
	for fw.ControlsSent() == 0 && time.Now().Before(deadline) {
		select {
		case <-fw.Cases():
		case <-time.After(10 * time.Millisecond):
		}
	}
	if fw.ControlsSent() == 0 {
		t.Fatal("no closed-loop control applied")
	}
	// The control was a release: attacker contexts must shrink below
	// the full flood size.
	if n := fw.GNB.ActiveUEs(); n >= 8 {
		t.Errorf("ActiveUEs = %d after release control", n)
	}
}

func TestFrameworkValidation(t *testing.T) {
	fw, err := New(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if err := fw.DeployXApps(); err == nil {
		t.Error("DeployXApps before Train succeeded")
	}
	// Registry is empty; Train with garbage fails.
	if err := fw.Train(nil); err == nil {
		t.Error("Train(nil) succeeded")
	}
}

func TestA1PolicyAdjustsLiveThresholds(t *testing.T) {
	fw := newTrainedFramework(t, false)
	aeBefore, lstmBefore := fw.Watch().Thresholds()

	if err := fw.A1.Put(smo.Policy{ID: "mobiwatch", ThresholdPercentile: 90}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		ae, lstm := fw.Watch().Thresholds()
		if ae < aeBefore && lstm < lstmBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("thresholds unchanged: ae %g->%g lstm %g->%g", aeBefore, ae, lstmBefore, lstm)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrameworkSMOWorkflowVisible(t *testing.T) {
	fw := newTrainedFramework(t, false)
	// The training run published a bundle version.
	if _, v, ok := fw.Registry.Latest("mobiwatch"); !ok || v != 1 {
		t.Errorf("registry latest = v%d ok=%v", v, ok)
	}
	// The expert endpoint is live and hosts five models.
	client := llm.NewClient(fw.LLMBaseURL(), "gemini")
	models, err := client.Models(context.Background())
	if err != nil || len(models) != 5 {
		t.Errorf("models = %v err=%v", models, err)
	}
}
