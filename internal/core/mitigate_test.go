package core

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/ue"
)

// newMitigatingFramework deploys the full stack with the mitigation
// engine in the given mode.
func newMitigatingFramework(t *testing.T, mode string, ttl time.Duration) *Framework {
	t.Helper()
	fw, err := New(Options{
		Seed:         3,
		ReportPeriod: 5 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: 15, Seed: 7},
		Mitigate:     mode,
		MitigateTTL:  ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fw.Close)

	benign, err := fw.CollectBenign(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(benign); err != nil {
		t.Fatal(err)
	}
	if err := fw.DeployXApps(); err != nil {
		t.Fatal(err)
	}
	// The case stream is informational here; drain it.
	go func() {
		for range fw.Cases() {
		}
	}()
	return fw
}

// TestMitigationEnforceEndToEnd exercises the full closed loop against
// the real gNB: blind-DoS telemetry → detector alert → LLM verdict →
// governor approval → E2 block-tmsi control → gNB ack (the TMSI is
// actually denied service) → TTL expiry → unblock-tmsi rollback.
func TestMitigationEnforceEndToEnd(t *testing.T) {
	fw := newMitigatingFramework(t, "enforce", 400*time.Millisecond)

	victim := fw.NewUE(ue.Pixel5, 300)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		t.Fatal(err)
	}
	attacker := fw.NewUE(ue.OAIUE, 301)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }
	// The replay flood may be cut short by the mitigation itself.
	_, _ = attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6)

	waitJournal := func(what string, cond func([]mitigate.Entry) bool) {
		t.Helper()
		deadline := time.Now().Add(8 * time.Second)
		for !cond(mitigate.Entries(fw.SDL)) {
			if time.Now().After(deadline) {
				st := fw.WatchStats()
				t.Fatalf("timed out waiting for %s (windows=%d alerts=%d journal=%+v)",
					what, st.WindowsScored.Load(), st.AlertsRaised.Load(), mitigate.Entries(fw.SDL))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The engine must ack a block-tmsi and enforce it on the gNB.
	waitJournal("active mitigation", func(entries []mitigate.Entry) bool {
		for _, en := range entries {
			if en.Action == "block-tmsi" && en.State == mitigate.StateActive.String() {
				return true
			}
		}
		return false
	})
	if n := fw.GNB.BlockedTMSIs(); n != 1 {
		t.Errorf("BlockedTMSIs = %d while mitigation active", n)
	}

	// TTL expiry must roll the block back on the real gNB.
	waitJournal("ttl rollback", func(entries []mitigate.Entry) bool {
		for _, en := range entries {
			if en.Action == "block-tmsi" && en.State == mitigate.StateRolledBack.String() {
				return true
			}
		}
		return false
	})
	if n := fw.GNB.BlockedTMSIs(); n != 0 {
		t.Errorf("BlockedTMSIs = %d after rollback", n)
	}
	if n := fw.Mitigator().ActiveCount(); n != 0 {
		t.Errorf("ActiveCount = %d after rollback", n)
	}
}

// TestMitigationDryRunIssuesNoControls proves dry-run journals proposals
// without touching the RAN.
func TestMitigationDryRunIssuesNoControls(t *testing.T) {
	fw := newMitigatingFramework(t, "dry-run", 0)
	controlsBefore := fw.RIC.Metrics().ControlsOK.Load()

	attacker := fw.NewUE(ue.OAIUE, 310)
	attacker.Profile.RetransProb = 0
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }
	if _, err := attacker.RunBTSDoS(fw.GNB, 8); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(8 * time.Second)
	for {
		entries := mitigate.Entries(fw.SDL)
		found := false
		for _, en := range entries {
			if en.Decision == "dry-run" {
				found = true
			}
			if en.Decision == "approved" {
				t.Fatalf("dry-run engine approved for issue: %+v", en)
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no dry-run proposal journaled (journal=%+v)", entries)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fw.Mitigator().Quiesce()
	if got := fw.RIC.Metrics().ControlsOK.Load(); got != controlsBefore {
		t.Errorf("dry-run issued %d controls", got-controlsBefore)
	}
	if n := fw.GNB.ActiveUEs(); n < 8 {
		t.Errorf("ActiveUEs = %d; dry-run must not release attacker contexts", n)
	}
}

// TestMitigationA1PolicySwitchesMode proves the A1 path reconfigures the
// running engine.
func TestMitigationA1PolicySwitchesMode(t *testing.T) {
	fw := newMitigatingFramework(t, "off", 0)
	if got := fw.Mitigator().Mode(); got != mitigate.ModeOff {
		t.Fatalf("initial mode = %v", got)
	}
	if err := fw.A1.Put(smo.Policy{ID: "mitigation", MitigationMode: "enforce",
		DenyActions: []string{"release-ue"}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for fw.Mitigator().Mode() != mitigate.ModeEnforce {
		if time.Now().After(deadline) {
			t.Fatalf("mode = %v after policy", fw.Mitigator().Mode())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
