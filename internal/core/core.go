// Package core assembles the 6G-XSec framework (Figure 3 of the paper):
// the simulated data plane (UE ↔ gNB ↔ AMF), the near-RT RIC platform
// with its E2 termination, the SMO training/deployment workflow, the
// MobiWatch detection xApp, the LLM Analyzer xApp with its expert
// endpoint, and the closed-loop control feedback.
//
// It is the embedding API the executables and examples build on:
//
//	fw, _ := core.New(core.Options{Seed: 1})
//	defer fw.Close()
//	fw.ProvisionFleet(10)
//	benign, _ := fw.CollectBenign(120)
//	fw.Train(benign)
//	fw.DeployXApps()
//	... drive traffic via fw.GNB / fw.NewUE, consume fw.Cases()
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/analyzer"
	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/ue"
)

// Options configures the framework.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// NodeID names the gNB (default "gnb-001").
	NodeID string
	// ReportPeriod is the E2 telemetry report interval (default 20 ms).
	ReportPeriod time.Duration
	// TrainOpts parameterizes MobiWatch training.
	TrainOpts mobiwatch.TrainOptions
	// Inference selects the MobiWatch scoring precision: "f32" (the
	// default batched fast path), "i8", or "f64" (the scalar reference
	// path). See mobiwatch.RunOptions.Inference.
	Inference string
	// LLMModel selects the analyst personality (default "chatgpt-4o").
	LLMModel string
	// LLMBaseURL points at an external endpoint; empty starts the
	// built-in expert service.
	LLMBaseURL string
	// LLMRAG enables retrieval-augmented prompting for the analyzer
	// (3GPP passages appended per window; §5 of the paper).
	LLMRAG bool
	// LLMWorkers sizes the analyzer worker pool (default 4). One worker
	// reproduces the original strictly-serial analyzer.
	LLMWorkers int
	// LLMServing tunes the serving layer between the analyzer and the
	// expert endpoint: verdict cache, request coalescing, hedged
	// retries, and the saturation governor. Zero value means defaults;
	// the governor journal always lands in the framework SDL.
	LLMServing llm.ServingOptions
	// AutoRespond applies recommended E2 control actions automatically
	// (the closed loop); otherwise cases only surface recommendations.
	// Ignored when Mitigate deploys the governed engine.
	AutoRespond bool
	// Mitigate deploys the mitigation-engine xApp in the given mode
	// ("off", "dry-run", "enforce"); empty leaves it undeployed and
	// AutoRespond in charge. A1 policies can switch the mode at runtime.
	Mitigate string
	// MitigateTTL overrides the engine's rollback TTL for reversible
	// actions (default 30 s).
	MitigateTTL time.Duration
	// CaseBuffer bounds the processed-case stream (default 128).
	CaseBuffer int
	// MetricsAddr, when non-empty, serves the observability endpoint
	// (/metrics Prometheus text, /traces, /debug/pprof) on this
	// address, e.g. ":9090". Use "127.0.0.1:0" to pick a free port;
	// MetricsAddr() reports the bound address.
	MetricsAddr string
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NodeID == "" {
		o.NodeID = "gnb-001"
	}
	if o.ReportPeriod == 0 {
		o.ReportPeriod = 20 * time.Millisecond
	}
	if o.LLMModel == "" {
		o.LLMModel = "chatgpt-4o"
	}
	if o.CaseBuffer == 0 {
		o.CaseBuffer = 128
	}
}

// Framework is a fully assembled 6G-XSec deployment.
type Framework struct {
	Opts Options

	SDL      *sdl.Store
	RIC      *ric.Platform
	GNB      *gnb.GNB
	AMF      *corenet.AMF
	Registry *smo.Registry
	A1       *smo.A1

	// Models is the deployed MobiWatch bundle (after Train/Deploy).
	Models *mobiwatch.Models

	watch      *mobiwatch.Runtime
	anlz       *analyzer.Analyzer
	llmServing *llm.Service
	pumpCancel context.CancelFunc
	mitigator  *mitigate.Engine
	xappWatch  *ric.XApp
	xappAnlz   *ric.XApp
	xappMit    *ric.XApp

	llmAddr     string
	llmShutdown func() error
	a1Cancel    func()

	prov     *prov.Ledger
	prevProv *prov.Ledger

	obsAddr     string
	obsShutdown func() error

	cases        chan *analyzer.Case
	casesDropped atomic.Uint64
	controlsSent atomic.Uint64

	fleetSize int
	clock     *dataset.VClock
}

// New assembles the data plane, control plane, and expert service. xApps
// are deployed separately (DeployXApps) once models exist.
func New(opts Options) (*Framework, error) {
	opts.defaults()
	store := sdl.New()
	// Install the SDL-backed provenance ledger before any pipeline
	// goroutine starts, so every event of every chain is persisted and
	// xsec-audit can reconstruct evidence after the run.
	ledger := prov.New(prov.Options{Store: store})
	prevLedger := prov.SetActive(ledger)
	platform := ric.NewPlatform(store)

	amf := corenet.NewAMF(opts.Seed + 1)
	clock := dataset.NewVClock(time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC))
	g, err := gnb.New(gnb.Config{NodeID: opts.NodeID, AMF: amf, Clock: clock.Now})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// E2 loopback: the gNB agent on one end, the RIC E2T on the other.
	ricEnd, nodeEnd := e2ap.Pipe()
	go platform.AttachNode(ricEnd)
	go g.ServeE2(nodeEnd)

	fw := &Framework{
		Opts:     opts,
		SDL:      store,
		RIC:      platform,
		GNB:      g,
		AMF:      amf,
		Registry: smo.NewRegistry(store),
		A1:       smo.NewA1(store),
		cases:    make(chan *analyzer.Case, opts.CaseBuffer),
		clock:    clock,
		prov:     ledger,
		prevProv: prevLedger,
	}

	if opts.MetricsAddr != "" {
		addr, shutdown, err := obs.ListenAndServe(opts.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("core: starting metrics endpoint: %w", err)
		}
		fw.obsAddr = addr
		fw.obsShutdown = shutdown
	}
	// Sampled at scrape time; re-registered per framework so the last
	// deployment wins.
	obs.NewGaugeFunc("xsec_core_case_queue_depth",
		"Processed cases waiting to be consumed.", func() float64 { return float64(len(fw.cases)) })

	if opts.LLMBaseURL == "" {
		srv := llm.NewServer()
		addr, shutdown, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("core: starting expert service: %w", err)
		}
		fw.llmAddr = "http://" + addr
		fw.llmShutdown = shutdown
	} else {
		fw.llmAddr = opts.LLMBaseURL
	}

	// Wait for the E2 setup handshake to complete.
	deadline := time.Now().Add(2 * time.Second)
	for len(platform.Nodes()) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: gNB did not complete E2 setup")
		}
		time.Sleep(time.Millisecond)
	}
	return fw, nil
}

// Clock returns the data plane's virtual clock.
func (f *Framework) Clock() *dataset.VClock { return f.clock }

// MetricsAddr reports the bound observability address ("" when
// Options.MetricsAddr was unset).
func (f *Framework) MetricsAddr() string { return f.obsAddr }

// LLMBaseURL reports the expert endpoint in use.
func (f *Framework) LLMBaseURL() string { return f.llmAddr }

// ProvisionFleet provisions n subscribers and returns their UE drivers,
// cycling through the commodity-device profiles.
func (f *Framework) ProvisionFleet(n int) []*ue.UE {
	fleet := make([]*ue.UE, n)
	for i := 0; i < n; i++ {
		fleet[i] = f.NewUE(ue.Profiles[i%len(ue.Profiles)], i)
	}
	f.fleetSize += n
	return fleet
}

// NewUE provisions one subscriber with the given profile. idx
// disambiguates SUPIs/keys across calls.
func (f *Framework) NewUE(profile ue.Profile, idx int) *ue.UE {
	supi := cell.SUPI(fmt.Sprintf("imsi-00101%010d", f.fleetSize+idx+1))
	var k [nas.KeySize]byte
	copy(k[:], fmt.Sprintf("subscriber-key-%09d", f.fleetSize+idx+1))
	f.AMF.AddSubscriber(corenet.Subscriber{SUPI: supi, K: k})
	u := ue.New(supi, k, profile, f.Opts.Seed+int64(f.fleetSize+idx)*31)
	u.Pace = func() { f.clock.Advance(10 * time.Millisecond) }
	return u
}

// CollectBenign drives n benign sessions across a temporary fleet and
// returns the collected telemetry, leaving the record buffer drained so
// live detection starts clean.
func (f *Framework) CollectBenign(sessions int) (mobiflow.Trace, error) {
	fleet := f.ProvisionFleet(10)
	for i := 0; i < sessions; i++ {
		u := fleet[i%len(fleet)]
		res, err := u.RunSession(f.GNB)
		if err != nil {
			return nil, fmt.Errorf("core: benign session %d: %w", i, err)
		}
		if !u.Profile.Deregisters {
			f.GNB.ReleaseUE(res.UEID)
			f.AMF.ReleaseUE(res.UEID)
		}
		f.clock.Advance(300 * time.Millisecond)
	}
	return f.GNB.DrainRecords(), nil
}

// Train fits MobiWatch on benign telemetry via the SMO workflow and
// deploys the published bundle.
func (f *Framework) Train(benign mobiflow.Trace) error {
	job := smo.TrainingJob{Opts: f.Opts.TrainOpts}
	if _, _, err := job.Run(f.Registry, benign); err != nil {
		return err
	}
	models, _, err := smo.Deploy(f.Registry, "mobiwatch")
	if err != nil {
		return err
	}
	f.Models = models
	return nil
}

// DeployXApps registers and starts MobiWatch and the LLM Analyzer. Train
// (or assign Models) first.
func (f *Framework) DeployXApps() error {
	if f.Models == nil {
		return fmt.Errorf("core: no models deployed; call Train first")
	}
	var err error
	f.xappWatch, err = f.RIC.RegisterXApp("mobiwatch")
	if err != nil {
		return err
	}
	f.xappAnlz, err = f.RIC.RegisterXApp("llm-analyzer")
	if err != nil {
		return err
	}
	f.watch, err = mobiwatch.Run(f.xappWatch, f.Models, mobiwatch.RunOptions{
		NodeID:       f.Opts.NodeID,
		ReportPeriod: f.Opts.ReportPeriod,
		Inference:    f.Opts.Inference,
	})
	if err != nil {
		return err
	}
	client := llm.NewClient(f.llmAddr, f.Opts.LLMModel)
	client.RAG = f.Opts.LLMRAG
	serving := f.Opts.LLMServing
	serving.Store = f.SDL // governor journal always lands in the SDL
	f.llmServing = llm.NewService(client, serving)
	f.llmServing.RegisterHealth("llm-serving")
	f.anlz = analyzer.New(f.llmServing, f.SDL)

	if f.Opts.Mitigate != "" {
		mode, err := mitigate.ParseMode(f.Opts.Mitigate)
		if err != nil {
			return err
		}
		f.xappMit, err = f.RIC.RegisterXApp("mitigation-engine")
		if err != nil {
			return err
		}
		f.mitigator = mitigate.New(mitigate.Config{
			NodeID: f.Opts.NodeID,
			Issuer: f.xappMit,
			Store:  f.SDL,
			Mode:   mode,
			TTL:    f.Opts.MitigateTTL,
		})
	}
	pumpCtx, cancel := context.WithCancel(context.Background())
	f.pumpCancel = cancel
	go f.pump(pumpCtx)

	// A1 policy feed: operator threshold changes apply to the running
	// detector without redeployment.
	events, cancel := f.A1.Watch(16)
	f.a1Cancel = cancel
	go func() {
		for ev := range events {
			if ev.Deleted {
				continue
			}
			policy, ok := f.A1.Get(ev.Key)
			if !ok {
				continue
			}
			f.ApplyPolicy(policy)
		}
	}()
	return nil
}

// ApplyPolicy applies one A1 policy to the running xApps: detection
// thresholds re-fit without redeployment and the mitigation engine
// re-governed. The local A1 watch loop and the federation bus fan-out
// both deliver policies through this path.
func (f *Framework) ApplyPolicy(policy smo.Policy) {
	if f.watch != nil && policy.ThresholdPercentile > 0 {
		// Invalid percentiles are operator error; the policy simply
		// does not take effect.
		_ = f.watch.SetThresholdPercentile(policy.ThresholdPercentile)
	}
	if f.mitigator != nil {
		f.mitigator.ApplyPolicy(policy)
	}
}

// Watch exposes the MobiWatch runtime (nil before DeployXApps).
func (f *Framework) Watch() *mobiwatch.Runtime { return f.watch }

// pump processes alerts into cases: a serial dedup stage drops windows
// overlapping an already-analyzed incident (one incident, one LLM round
// trip), then a bounded analyzer worker pool runs expert referencing
// concurrently. ctx cancellation (framework shutdown) aborts in-flight
// REST calls.
func (f *Framework) pump(ctx context.Context) {
	defer close(f.cases)
	// Dedup must stay serial — lastSeq ordering only exists before the
	// pool fans out.
	deduped := make(chan mobiwatch.Alert, f.Opts.CaseBuffer)
	go func() {
		defer close(deduped)
		var lastSeq uint64
		for alert := range f.watch.Alerts() {
			windowEnd := alert.Window[len(alert.Window)-1].Seq
			if windowEnd <= lastSeq {
				continue // overlaps an already-analyzed incident
			}
			lastSeq = windowEnd
			select {
			case deduped <- alert:
			case <-ctx.Done():
				return
			}
		}
	}()
	for c := range f.anlz.RunPool(ctx, deduped, analyzer.PoolOptions{Workers: f.Opts.LLMWorkers}) {
		if c.Control != nil {
			switch {
			case f.mitigator != nil:
				// The engine governs, journals, issues, and rolls back.
				f.mitigator.Submit(c)
			case f.Opts.AutoRespond:
				if err := f.SendControl(c.Control); err == nil {
					f.controlsSent.Add(1)
				}
			}
		}
		select {
		case f.cases <- c:
		default:
			f.casesDropped.Add(1)
			obsCasesDropped.Inc()
			obs.L().Warn("core: case stream full, processed case dropped",
				"node", c.Alert.NodeID, "model", string(c.Alert.Model))
		}
	}
}

// SendControl issues an E2SM-XRC control action toward the gNB.
func (f *Framework) SendControl(req *e2sm.ControlRequest) error {
	return f.xappAnlz.Control(f.Opts.NodeID, e2sm.XRCRANFunctionID, nil, asn1lite.Marshal(req))
}

// Cases streams processed incidents (after DeployXApps).
func (f *Framework) Cases() <-chan *analyzer.Case { return f.cases }

// ControlsSent reports how many closed-loop actions were applied.
func (f *Framework) ControlsSent() uint64 { return f.controlsSent.Load() }

// WatchStats exposes the MobiWatch runtime counters (nil before deploy).
func (f *Framework) WatchStats() *mobiwatch.Stats {
	if f.watch == nil {
		return nil
	}
	return f.watch.Stats()
}

// AnalyzerStats exposes the analyzer counters (nil before deploy).
func (f *Framework) AnalyzerStats() *analyzer.Stats {
	if f.anlz == nil {
		return nil
	}
	return f.anlz.Stats()
}

// Analyzer exposes the analyzer xApp (nil before deploy).
func (f *Framework) Analyzer() *analyzer.Analyzer { return f.anlz }

// LLMServing exposes the serving layer between the analyzer and the
// expert endpoint (nil before deploy).
func (f *Framework) LLMServing() *llm.Service { return f.llmServing }

// Mitigator exposes the mitigation engine (nil unless Options.Mitigate
// deployed it).
func (f *Framework) Mitigator() *mitigate.Engine { return f.mitigator }

// Prov exposes the framework's provenance ledger.
func (f *Framework) Prov() *prov.Ledger { return f.prov }

// Close shuts everything down.
func (f *Framework) Close() {
	if f.a1Cancel != nil {
		f.a1Cancel()
	}
	if f.mitigator != nil {
		// Before the RIC: in-flight controls still need the E2 path.
		f.mitigator.Close()
	}
	if f.watch != nil {
		f.watch.Stop()
	}
	if f.pumpCancel != nil {
		// Analyzer shutdown: aborts in-flight expert REST calls (the
		// serving layer degrades any straggler to a rule-based verdict).
		f.pumpCancel()
	}
	if f.llmServing != nil {
		f.llmServing.Close()
	}
	f.RIC.Close()
	if f.llmShutdown != nil {
		f.llmShutdown()
	}
	if f.obsShutdown != nil {
		f.obsShutdown()
	}
	// Pipeline goroutines are quiescent: route future events (from any
	// other framework instance) back to the previous ledger, then drain
	// ours so every persisted chain is complete.
	if f.prov != nil {
		prov.SetActive(f.prevProv)
		f.prov.Close()
		f.prov = nil
	}
}

// obsCasesDropped counts processed cases lost to a full case stream.
var obsCasesDropped = obs.NewCounter("xsec_core_cases_dropped_total",
	"Processed cases dropped because the case stream was full.")
