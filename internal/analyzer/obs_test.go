package analyzer

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// The obs registry is process-global, so assertions are on deltas.

func TestObsDetectLatency(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	a := New(llm.NewClient(base, "chatgpt-4o"), sdl.New())

	before := obsDetectLat.Count()
	alert := mobiwatch.Alert{
		NodeID: "gnb-obs", Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
		Window: windowOf(l, ue.AttackBTSDoS), At: time.Now(),
		ReceivedAt:   time.Now().Add(-25 * time.Millisecond),
		IndicationSN: 7,
	}
	if _, err := a.Process(context.Background(), alert); err != nil {
		t.Fatal(err)
	}
	if got := obsDetectLat.Count(); got != before+1 {
		t.Fatalf("detect latency count = %d, want %d", got, before+1)
	}

	// The end-to-end histogram is scrapeable under its paper-facing name.
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE xsec_detect_latency_seconds histogram\n",
		`xsec_detect_latency_seconds_bucket{le="+Inf"} `,
		"xsec_detect_latency_seconds_sum ",
		"xsec_detect_latency_seconds_count ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Process left an analyzer span on the indication's trace key.
	spans := obs.DefaultTracer.ByKey(obs.IndicationKey("gnb-obs", 7))
	found := false
	for _, s := range spans {
		if s.Stage == "analyzer.process" {
			found = true
		}
	}
	if !found {
		t.Errorf("no analyzer.process span for gnb-obs/7 (spans: %+v)", spans)
	}
}

func TestObsDetectLatencySkippedWithoutReceivedAt(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	a := New(llm.NewClient(base, "chatgpt-4o"), sdl.New())

	before := obsDetectLat.Count()
	alert := mobiwatch.Alert{
		NodeID: "gnb-obs", Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
		Window: windowOf(l, ue.AttackBTSDoS), At: time.Now(),
		// ReceivedAt deliberately zero: replayed or synthetic alerts must
		// not pollute the latency distribution.
	}
	if _, err := a.Process(context.Background(), alert); err != nil {
		t.Fatal(err)
	}
	if got := obsDetectLat.Count(); got != before {
		t.Errorf("detect latency count moved on zero ReceivedAt: %d -> %d", before, got)
	}
}
