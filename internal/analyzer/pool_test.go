package analyzer

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// stubExpert answers instantly with a canned analysis, tracking peak
// concurrency so the pool tests can prove parallelism and its bound.
type stubExpert struct {
	served    string
	delay     time.Duration
	inflight  atomic.Int64
	peak      atomic.Int64
	processed atomic.Uint64
}

func (s *stubExpert) AnalyzeWindow(ctx context.Context, window mobiflow.Trace) (*llm.Analysis, error) {
	cur := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.processed.Add(1)
	return &llm.Analysis{
		Verdict:    llm.VerdictAnomalous,
		Confidence: 0.9,
		Hypotheses: []llm.Hypothesis{{Class: llm.ClassNullCipher, Likelihood: 0.9}},
		Served:     s.served,
	}, nil
}

func poolAlerts(t *testing.T, n int) chan mobiwatch.Alert {
	t.Helper()
	l := mixedTrace(t)
	window := windowOf(l, ue.AttackNullCipher)
	alerts := make(chan mobiwatch.Alert, n)
	for i := 0; i < n; i++ {
		alerts <- mobiwatch.Alert{
			NodeID: "gnb-001", Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
			IndicationSN: uint64(i), Window: window, At: time.Now(),
		}
	}
	close(alerts)
	return alerts
}

func TestRunPoolProcessesEveryAlert(t *testing.T) {
	expert := &stubExpert{served: llm.ServedLive, delay: 5 * time.Millisecond}
	a := New(expert, sdl.New())
	const n = 24
	got := 0
	for c := range a.RunPool(context.Background(), poolAlerts(t, n), PoolOptions{Workers: 4}) {
		if c.Analysis == nil {
			t.Error("case without analysis")
		}
		got++
	}
	if got != n {
		t.Errorf("cases = %d, want %d (zero dropped alerts)", got, n)
	}
	if peak := expert.peak.Load(); peak < 2 || peak > 4 {
		t.Errorf("peak concurrency = %d, want 2..4 (parallel but bounded)", peak)
	}
	if a.Stats().Processed.Load() != n {
		t.Errorf("processed = %d", a.Stats().Processed.Load())
	}
}

func TestRunPoolSingleWorkerIsSerial(t *testing.T) {
	expert := &stubExpert{served: llm.ServedLive, delay: time.Millisecond}
	a := New(expert, sdl.New())
	for range a.Run(context.Background(), poolAlerts(t, 8)) {
	}
	if peak := expert.peak.Load(); peak != 1 {
		t.Errorf("peak concurrency = %d, want 1", peak)
	}
}

func TestRunPoolCancellation(t *testing.T) {
	expert := &stubExpert{served: llm.ServedLive, delay: time.Hour}
	a := New(expert, sdl.New())
	ctx, cancel := context.WithCancel(context.Background())
	out := a.RunPool(ctx, poolAlerts(t, 8), PoolOptions{Workers: 2})
	time.Sleep(20 * time.Millisecond) // let workers block in the expert
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // pool wound down promptly
			}
		case <-deadline:
			t.Fatal("pool did not stop after cancellation")
		}
	}
}

// TestProcessCountsServingSources verifies the analyzer's stats and case
// handling distinguish cached and degraded verdicts.
func TestProcessCountsServingSources(t *testing.T) {
	l := mixedTrace(t)
	alert := mobiwatch.Alert{
		NodeID: "gnb-001", Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
		Window: windowOf(l, ue.AttackNullCipher), At: time.Now(),
	}
	for _, tc := range []struct {
		served       string
		wantCached   uint64
		wantDegraded uint64
	}{
		{llm.ServedCache, 1, 0},
		{llm.ServedCoalesced, 1, 0},
		{llm.ServedDegraded, 0, 1},
		{llm.ServedLive, 0, 0},
	} {
		a := New(&stubExpert{served: tc.served}, sdl.New())
		c, err := a.Process(context.Background(), alert)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Agree {
			t.Errorf("%s: agree = false", tc.served)
		}
		if got := a.Stats().Cached.Load(); got != tc.wantCached {
			t.Errorf("%s: cached = %d, want %d", tc.served, got, tc.wantCached)
		}
		if got := a.Stats().Degraded.Load(); got != tc.wantDegraded {
			t.Errorf("%s: degraded = %d, want %d", tc.served, got, tc.wantDegraded)
		}
	}
}
