// Package analyzer implements the LLM Analyzer xApp (§3.3 of the paper):
// anomalous windows flagged by MobiWatch are rendered into zero-shot
// prompts, sent to an LLM endpoint over REST, and parsed into structured
// analyses (classification, explanation, attribution, remediation). The
// xApp cross-compares the detector's and the LLM's decisions — agreement
// increases confidence, disagreement routes the case to the human-
// supervision queue (the hallucination safeguard) — and recommends E2
// control actions for the closed feedback loop of Figure 3.
package analyzer

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/rrc"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Analyzer observability. xsec_detect_latency_seconds is the paper's
// headline pipeline number: first malicious telemetry arriving at the
// RIC (the indication that completed the flagged window) to the LLM
// verdict landing, measured per processed case.
var (
	obsCases = obs.NewCounterVec("xsec_analyzer_cases_total",
		"Processed cases, by outcome.", "outcome")
	obsCaseAgree    = obsCases.With("agreement")
	obsCaseDisagree = obsCases.With("disagreement")
	obsCaseFailure  = obsCases.With("llm_failure")
	obsDetectLat    = obs.NewHistogram("xsec_detect_latency_seconds",
		"End-to-end detection latency: E2 indication arrival at the RIC to LLM verdict.",
		obs.DefLatencyBuckets)
)

// Case is one fully processed incident.
type Case struct {
	// Alert is the originating detection.
	Alert mobiwatch.Alert
	// Analysis is the LLM's structured answer (nil if the query failed).
	Analysis *llm.Analysis
	// Agree reports whether detector and LLM both consider the window
	// anomalous.
	Agree bool
	// NeedsHuman marks cases requiring operator review: detector/LLM
	// disagreement or an unusable LLM response.
	NeedsHuman bool
	// Control is the recommended closed-loop action, if any.
	Control *e2sm.ControlRequest
	// ProcessedAt stamps completion.
	ProcessedAt time.Time
}

// Stats counts analyzer activity. Cached counts verdicts the serving
// layer answered without a fresh upstream round trip (cache hits and
// coalesced followers); Degraded counts rule-based fallback verdicts
// served while the expert endpoint was saturated.
type Stats struct {
	Processed  atomic.Uint64
	Agreements atomic.Uint64
	Disagrees  atomic.Uint64
	Failures   atomic.Uint64
	Cached     atomic.Uint64
	Degraded   atomic.Uint64
}

// Expert answers for a telemetry window. Both the bare llm.Client and
// the llm.Service serving layer (cache / coalesce / hedge / shed)
// satisfy it; the analyzer does not care which is behind it.
type Expert interface {
	AnalyzeWindow(ctx context.Context, window mobiflow.Trace) (*llm.Analysis, error)
}

// Analyzer is the xApp.
type Analyzer struct {
	client Expert
	store  *sdl.Store
	clock  func() time.Time
	stats  Stats
}

// New builds an analyzer querying client and persisting its human-review
// queue in store (may be nil to skip persistence).
func New(client Expert, store *sdl.Store) *Analyzer {
	return &Analyzer{client: client, store: store, clock: time.Now}
}

// Stats returns live counters.
func (a *Analyzer) Stats() *Stats { return &a.stats }

// Process runs expert referencing for one alert. The context bounds the
// expert query: cancellation (analyzer shutdown, per-case timeout)
// aborts the in-flight REST call.
func (a *Analyzer) Process(ctx context.Context, alert mobiwatch.Alert) (*Case, error) {
	chainKey := obs.IndicationKey(alert.NodeID, alert.IndicationSN)
	span := obs.StartSpan(chainKey, "analyzer.process")
	defer span.End()
	if !alert.ReceivedAt.IsZero() {
		// The exemplar binds a latency bucket to the provenance chain of
		// the slowest indication it holds, so a bad quantile in /metrics
		// links straight to the /prov evidence behind it.
		defer func() {
			obsDetectLat.ObserveWithExemplar(a.clock().Sub(alert.ReceivedAt).Seconds(), chainKey)
		}()
	}
	chain := prov.ChainID{Node: alert.NodeID, SN: alert.IndicationSN}
	c := &Case{Alert: alert, ProcessedAt: a.clock()}
	window := alert.Context
	if len(window) == 0 {
		window = alert.Window
	}
	analysis, err := a.client.AnalyzeWindow(ctx, window)
	a.stats.Processed.Add(1)
	if err != nil {
		// The LLM is unreachable or hallucinated an unparseable answer:
		// the detector's verdict stands, but a human must review.
		a.stats.Failures.Add(1)
		obsCaseFailure.Inc()
		obs.L().Warn("analyzer: LLM unusable, case escalated", "node", alert.NodeID, "err", err)
		c.NeedsHuman = true
		a.enqueueHuman(c, fmt.Sprintf("llm failure: %v", err))
		prov.Record(prov.Event{
			Chain: chain,
			Kind:  prov.KindVerdict,
			At:    c.ProcessedAt,
			Label: "llm_failure",
			Note:  err.Error(),
		})
		return c, nil
	}
	c.Analysis = analysis
	c.Agree = analysis.Verdict == llm.VerdictAnomalous
	ev := prov.Event{
		Chain:  chain,
		Kind:   prov.KindVerdict,
		At:     c.ProcessedAt,
		Digest: analysis.PromptDigest,
		Model:  analysis.Model,
		Label:  analysis.Verdict.String(),
		Action: analysis.TopClass().String(),
		Score:  analysis.Confidence,
	}
	// Non-live serving sources are part of the evidence: an auditor
	// reading the chain must be able to tell a fresh expert opinion from
	// a cache replay or a degraded rule-based fallback.
	var notes []string
	switch analysis.Served {
	case llm.ServedCache, llm.ServedCoalesced:
		a.stats.Cached.Add(1)
		notes = append(notes, "served="+analysis.Served)
	case llm.ServedDegraded:
		a.stats.Degraded.Add(1)
		notes = append(notes, "served="+analysis.Served)
	}
	if c.Agree {
		a.stats.Agreements.Add(1)
		obsCaseAgree.Inc()
		c.Control = RecommendControl(analysis, window)
	} else {
		// MobiWatch flagged the window; the LLM disagrees. §3.3: human
		// supervision is required for contradictory results.
		a.stats.Disagrees.Add(1)
		obsCaseDisagree.Inc()
		c.NeedsHuman = true
		a.enqueueHuman(c, "detector/LLM disagreement")
		notes = append(notes, "detector/LLM disagreement: escalated to human review")
	}
	ev.Note = strings.Join(notes, "; ")
	prov.Record(ev)
	return c, nil
}

// PoolOptions tunes RunPool. The zero value means defaults.
type PoolOptions struct {
	// Workers is the pool size (default 4). One worker reproduces the
	// original strictly-serial behavior.
	Workers int
	// CaseTimeout bounds one alert's expert query (default 15 s). The
	// serving layer degrades a timed-out case to a rule-based verdict, so
	// a stuck endpoint cannot stall the loop.
	CaseTimeout time.Duration
	// Buffer sizes the output channel (default 16).
	Buffer int
}

func (o *PoolOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CaseTimeout <= 0 {
		o.CaseTimeout = 15 * time.Second
	}
	if o.Buffer <= 0 {
		o.Buffer = 16
	}
}

// Run consumes alerts serially until the channel closes, emitting
// processed cases. Equivalent to RunPool with one worker.
func (a *Analyzer) Run(ctx context.Context, alerts <-chan mobiwatch.Alert) <-chan *Case {
	return a.RunPool(ctx, alerts, PoolOptions{Workers: 1})
}

// RunPool consumes alerts with a bounded worker pool until the channel
// closes or ctx is canceled, emitting processed cases (order follows
// completion, not arrival). Each case runs under its own deadline
// derived from ctx, so analyzer shutdown cancels in-flight REST calls.
func (a *Analyzer) RunPool(ctx context.Context, alerts <-chan mobiwatch.Alert, opts PoolOptions) <-chan *Case {
	opts.defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan *Case, opts.Buffer)
	var wg sync.WaitGroup
	wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case alert, ok := <-alerts:
					if !ok {
						return
					}
					cctx, cancel := context.WithTimeout(ctx, opts.CaseTimeout)
					c, err := a.Process(cctx, alert)
					cancel()
					if err != nil {
						continue
					}
					select {
					case out <- c:
					case <-ctx.Done():
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// humanQueueEntry is the SDL persistence format for the review queue.
type humanQueueEntry struct {
	Reason  string    `json:"reason"`
	Model   string    `json:"model"`
	Score   float64   `json:"score"`
	Records []string  `json:"records"`
	At      time.Time `json:"at"`
}

func (a *Analyzer) enqueueHuman(c *Case, reason string) {
	if a.store == nil {
		return
	}
	entry := humanQueueEntry{
		Reason: reason,
		Model:  string(c.Alert.Model),
		Score:  c.Alert.Score,
		At:     c.ProcessedAt,
	}
	for _, r := range c.Alert.Window {
		entry.Records = append(entry.Records, r.String())
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	key := fmt.Sprintf("case/%020d", c.Alert.Window[0].Seq)
	a.store.Set("analyzer/human-queue", key, data)
}

// HumanQueueLen reports pending human-review cases.
func (a *Analyzer) HumanQueueLen() int {
	if a.store == nil {
		return 0
	}
	return a.store.Len("analyzer/human-queue")
}

// RecommendControl maps an LLM classification to a closed-loop E2 control
// action (§5, Automated Network Responses). Identity-extraction attacks
// yield no automated action: they indicate a radio-side MiTM that RAN
// controls cannot remove, so the case is informational.
func RecommendControl(analysis *llm.Analysis, window mobiflow.Trace) *e2sm.ControlRequest {
	if analysis == nil || analysis.Verdict != llm.VerdictAnomalous {
		return nil
	}
	switch analysis.TopClass() {
	case llm.ClassBTSDoS:
		// Release the context with the most incomplete connection
		// attempts — not simply the last UE in the window, which can be
		// a benign bystander whose records trail the attacker's.
		if ue, ok := mostIncompleteUE(window); ok {
			return &e2sm.ControlRequest{
				Action: e2sm.ControlReleaseUE,
				UEID:   ue,
				Reason: "signaling storm: releasing fabricated connection",
			}
		}
	case llm.ClassBlindDoS:
		if tmsi, ok := dominantTMSI(window); ok {
			return &e2sm.ControlRequest{
				Action: e2sm.ControlBlockTMSI,
				TMSI:   tmsi,
				Reason: "blind DoS: blocking replayed temporary identity",
			}
		}
	case llm.ClassNullCipher:
		return &e2sm.ControlRequest{
			Action: e2sm.ControlRequireStrongSecurity,
			Reason: "null-security session detected: enforcing strong algorithms",
		}
	}
	return nil
}

// mostIncompleteUE picks the release target for a signaling storm: the
// UE context with the most incomplete connection-attempt records in the
// window. Setup and registration requests count as attempt evidence; a
// context that activates security within the window completed a normal
// attach and is never selected, so a benign bystander — even one whose
// records trail the attacker's — is not released. Ties go to the most
// recently seen offender, the closest context to the storm's front.
func mostIncompleteUE(window mobiflow.Trace) (uint64, bool) {
	attemptMsgs := map[string]bool{
		rrc.TypeSetupRequest.String():        true,
		nas.TypeRegistrationRequest.String(): true,
	}
	type tally struct {
		attempts int
		complete bool
		lastSeen int
	}
	byUE := make(map[uint64]*tally)
	for i, r := range window {
		tl := byUE[r.UEID]
		if tl == nil {
			tl = &tally{}
			byUE[r.UEID] = tl
		}
		tl.lastSeen = i
		if attemptMsgs[r.Msg] {
			tl.attempts++
		}
		if r.SecurityOn || r.RRCState == rrc.StateSecurityActivated || r.RRCState == rrc.StateReconfigured {
			tl.complete = true
		}
	}
	var best uint64
	bestAttempts, bestSeen := 0, -1
	for ue, tl := range byUE {
		if tl.complete {
			continue
		}
		if tl.attempts > bestAttempts || (tl.attempts == bestAttempts && tl.lastSeen > bestSeen) {
			best, bestAttempts, bestSeen = ue, tl.attempts, tl.lastSeen
		}
	}
	return best, bestAttempts > 0
}

func dominantTMSI(window mobiflow.Trace) (cell.TMSI, bool) {
	counts := make(map[cell.TMSI]int)
	for _, r := range window {
		if r.TMSI != cell.InvalidTMSI {
			counts[r.TMSI]++
		}
	}
	var best cell.TMSI
	bestN := 0
	for tmsi, n := range counts {
		if n > bestN || (n == bestN && tmsi < best) {
			best, bestN = tmsi, n
		}
	}
	return best, bestN > 0
}
