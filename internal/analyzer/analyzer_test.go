package analyzer

import (
	"context"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

func mixedTrace(t *testing.T) *dataset.Labeled {
	t.Helper()
	l, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Fleet: 8, Seed: 51},
		InstancesPerAttack: 1,
		BenignBetween:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func windowOf(l *dataset.Labeled, kind ue.AttackKind) mobiflow.Trace {
	var w mobiflow.Trace
	for i, r := range l.Trace {
		if l.AttackOf[i] == int(kind) {
			w = append(w, r)
		}
	}
	return w
}

func startExpert(t *testing.T) string {
	t.Helper()
	srv := llm.NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	return "http://" + addr
}

func TestProcessAgreement(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	store := sdl.New()
	a := New(llm.NewClient(base, "chatgpt-4o"), store)

	alert := mobiwatch.Alert{
		NodeID: "gnb-001", Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
		Window: windowOf(l, ue.AttackBTSDoS), At: time.Now(),
	}
	c, err := a.Process(context.Background(), alert)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Agree || c.NeedsHuman {
		t.Errorf("case = agree=%v needsHuman=%v", c.Agree, c.NeedsHuman)
	}
	if c.Analysis == nil || c.Analysis.Verdict != llm.VerdictAnomalous {
		t.Fatalf("analysis = %+v", c.Analysis)
	}
	if c.Control == nil || c.Control.Action != e2sm.ControlReleaseUE {
		t.Errorf("control = %+v, want release-ue", c.Control)
	}
	if a.Stats().Agreements.Load() != 1 {
		t.Error("agreement not counted")
	}
	if a.HumanQueueLen() != 0 {
		t.Error("agreement enqueued for human review")
	}
}

func TestProcessDisagreementGoesToHumans(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	store := sdl.New()
	// Claude misses BTS DoS (Table 3): it will call the window benign.
	a := New(llm.NewClient(base, "claude-3-sonnet"), store)

	alert := mobiwatch.Alert{
		Model: mobiwatch.ModelAE, Score: 0.5, Threshold: 0.1,
		Window: windowOf(l, ue.AttackBTSDoS), At: time.Now(),
	}
	c, err := a.Process(context.Background(), alert)
	if err != nil {
		t.Fatal(err)
	}
	if c.Agree {
		t.Fatal("expected disagreement")
	}
	if !c.NeedsHuman {
		t.Error("disagreement not routed to humans")
	}
	if c.Control != nil {
		t.Error("control recommended despite disagreement")
	}
	if a.HumanQueueLen() != 1 {
		t.Errorf("human queue = %d", a.HumanQueueLen())
	}
	if a.Stats().Disagrees.Load() != 1 {
		t.Error("disagreement not counted")
	}
}

func TestProcessLLMFailure(t *testing.T) {
	l := mixedTrace(t)
	store := sdl.New()
	// Unreachable endpoint.
	a := New(llm.NewClient("http://127.0.0.1:1", "chatgpt-4o"), store)
	alert := mobiwatch.Alert{
		Model: mobiwatch.ModelAE, Window: windowOf(l, ue.AttackBTSDoS), At: time.Now(),
	}
	c, err := a.Process(context.Background(), alert)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NeedsHuman || c.Analysis != nil {
		t.Errorf("case = %+v", c)
	}
	if a.Stats().Failures.Load() != 1 {
		t.Error("failure not counted")
	}
	if a.HumanQueueLen() != 1 {
		t.Error("failure not enqueued")
	}
}

func TestRunChannelPipeline(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	a := New(llm.NewClient(base, "chatgpt-4o"), sdl.New())

	alerts := make(chan mobiwatch.Alert, 2)
	alerts <- mobiwatch.Alert{Model: mobiwatch.ModelAE, Window: windowOf(l, ue.AttackNullCipher), At: time.Now()}
	alerts <- mobiwatch.Alert{Model: mobiwatch.ModelLSTM, Window: windowOf(l, ue.AttackBlindDoS), At: time.Now()}
	close(alerts)

	var cases []*Case
	for c := range a.Run(context.Background(), alerts) {
		cases = append(cases, c)
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases[0].Analysis.TopClass() != llm.ClassNullCipher {
		t.Errorf("case 0 class = %v", cases[0].Analysis.TopClass())
	}
	if cases[0].Control == nil || cases[0].Control.Action != e2sm.ControlRequireStrongSecurity {
		t.Errorf("case 0 control = %+v", cases[0].Control)
	}
	if cases[1].Control == nil || cases[1].Control.Action != e2sm.ControlBlockTMSI {
		t.Errorf("case 1 control = %+v", cases[1].Control)
	}
}

func TestRecommendControl(t *testing.T) {
	if RecommendControl(nil, nil) != nil {
		t.Error("nil analysis produced control")
	}
	benign := &llm.Analysis{Verdict: llm.VerdictBenign}
	if RecommendControl(benign, nil) != nil {
		t.Error("benign verdict produced control")
	}
	// Identity extraction: informational only.
	idx := &llm.Analysis{Verdict: llm.VerdictAnomalous,
		Hypotheses: []llm.Hypothesis{{Class: llm.ClassUplinkIDExtraction}}}
	if RecommendControl(idx, mobiflow.Trace{{UEID: 1}}) != nil {
		t.Error("identity extraction produced automated control")
	}
	// Blind DoS picks the dominant TMSI.
	blind := &llm.Analysis{Verdict: llm.VerdictAnomalous,
		Hypotheses: []llm.Hypothesis{{Class: llm.ClassBlindDoS}}}
	w := mobiflow.Trace{{TMSI: 5}, {TMSI: 5}, {TMSI: 9}}
	ctrl := RecommendControl(blind, w)
	if ctrl == nil || ctrl.TMSI != cell.TMSI(5) {
		t.Errorf("control = %+v", ctrl)
	}
}

func TestBTSDoSReleaseTargetsOffenderNotBystander(t *testing.T) {
	storm := &llm.Analysis{Verdict: llm.VerdictAnomalous,
		Hypotheses: []llm.Hypothesis{{Class: llm.ClassBTSDoS}}}

	// A signaling-storm window: fabricated contexts 10 and 11 each fire
	// an abandoned setup+registration, while benign UE 7 — whose records
	// happen to come last — completes its attach (security activated).
	window := mobiflow.Trace{
		{UEID: 10, Msg: "RRCSetupRequest", RRCState: rrc.StateSetupRequested},
		{UEID: 11, Msg: "RRCSetupRequest", RRCState: rrc.StateSetupRequested},
		{UEID: 10, Msg: "RegistrationRequest", NASState: nas.StateRegInitiated},
		{UEID: 11, Msg: "RegistrationRequest", NASState: nas.StateRegInitiated},
		{UEID: 7, Msg: "RRCSetupRequest", RRCState: rrc.StateSetupRequested},
		{UEID: 7, Msg: "RegistrationRequest", NASState: nas.StateRegInitiated},
		{UEID: 7, Msg: "NASSecurityModeComplete", SecurityOn: true, NASState: nas.StateSecured},
		{UEID: 7, Msg: "RRCSecurityModeComplete", SecurityOn: true, RRCState: rrc.StateSecurityActivated},
	}
	ctrl := RecommendControl(storm, window)
	if ctrl == nil || ctrl.Action != e2sm.ControlReleaseUE {
		t.Fatalf("control = %+v", ctrl)
	}
	if ctrl.UEID == 7 {
		t.Fatal("benign trailing UE selected for release")
	}
	// Ties between offenders break toward the most recent one.
	if ctrl.UEID != 11 {
		t.Errorf("release target = %d, want most recent offender 11", ctrl.UEID)
	}

	// A window where every context completed yields no release at all.
	done := mobiflow.Trace{
		{UEID: 7, Msg: "RRCSetupRequest", RRCState: rrc.StateSetupRequested},
		{UEID: 7, Msg: "RRCSecurityModeComplete", SecurityOn: true, RRCState: rrc.StateSecurityActivated},
	}
	if got := RecommendControl(storm, done); got != nil {
		t.Errorf("all-complete window produced control %+v", got)
	}
}
