package analyzer

import (
	"context"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// TestRAGTurnsDisagreementIntoAgreement: the zero-shot chatgpt-4o analyst
// misses the uplink identity extraction (Table 3) so the case goes to
// human review; with retrieval-augmented prompting the same analyst
// confirms the detector and the case auto-resolves.
func TestRAGTurnsDisagreementIntoAgreement(t *testing.T) {
	l := mixedTrace(t)
	base := startExpert(t)
	window := windowOf(l, ue.AttackUplinkIDExtraction)
	alert := mobiwatch.Alert{Model: mobiwatch.ModelAE, Score: 0.3, Threshold: 0.05, Window: window, At: time.Now()}

	// Zero-shot: disagreement.
	zero := New(llm.NewClient(base, "chatgpt-4o"), sdl.New())
	c0, err := zero.Process(context.Background(), alert)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Agree || !c0.NeedsHuman {
		t.Fatalf("zero-shot case: agree=%v human=%v, want disagreement", c0.Agree, c0.NeedsHuman)
	}

	// RAG: agreement with the correct classification.
	client := llm.NewClient(base, "chatgpt-4o")
	client.RAG = true
	rag := New(client, sdl.New())
	c1, err := rag.Process(context.Background(), alert)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Agree || c1.NeedsHuman {
		t.Fatalf("RAG case: agree=%v human=%v, want agreement", c1.Agree, c1.NeedsHuman)
	}
	if c1.Analysis.TopClass() != llm.ClassUplinkIDExtraction {
		t.Errorf("RAG classification = %v", c1.Analysis.TopClass())
	}
	// Identity extraction yields no automated control (privacy incident,
	// not a RAN-controllable condition).
	if c1.Control != nil {
		t.Errorf("unexpected control %+v", c1.Control)
	}
}
