package prov

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// fullChain records one end-to-end evidence chain into l.
func fullChain(l *Ledger, id ChainID, ue uint64, at time.Time) {
	l.Record(Event{Chain: id, Kind: KindEmit, At: at, Records: 10, SeqFirst: 1, SeqLast: 10})
	l.Record(Event{Chain: id, Kind: KindIndication, At: at.Add(time.Millisecond), Label: "routed"})
	l.Record(Event{Chain: id, Kind: KindWindow, At: at.Add(2 * time.Millisecond),
		Model: "autoencoder", Score: 4.2, Threshold: 1.5, Flagged: true})
	l.Record(Event{Chain: id, Kind: KindAlert, At: at.Add(3 * time.Millisecond),
		Model: "autoencoder", Score: 4.2, Threshold: 1.5, Flagged: true, Label: "raised"})
	l.Record(Event{Chain: id, Kind: KindVerdict, At: at.Add(4 * time.Millisecond),
		Label: "anomalous", Action: "bts-dos", Score: 0.9, Digest: DigestText("prompt")})
	l.Record(Event{Chain: id, Kind: KindMitigation, At: at.Add(5 * time.Millisecond),
		ActionID: 1, Action: "release-ue", Label: "issued", Target: "ue/901", UEID: ue})
}

func TestQuerySelect(t *testing.T) {
	l := New(Options{})
	defer l.Close()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	fullChain(l, ChainID{Node: "gnb-001", SN: 1}, 901, base)
	l.Record(Event{Chain: ChainID{Node: "gnb-001", SN: 2}, Kind: KindWindow, At: base.Add(time.Hour),
		Model: "autoencoder", Score: 0.1, Threshold: 1.5})
	l.Flush()

	if got := len(l.Select(Query{})); got != 2 {
		t.Fatalf("unfiltered Select = %d chains, want 2", got)
	}
	if got := l.Select(Query{Chain: ChainID{Node: "gnb-001", SN: 1}}); len(got) != 1 || got[0].ID.SN != 1 {
		t.Fatalf("by chain: %+v", got)
	}
	ue := uint64(901)
	if got := l.Select(Query{UE: &ue}); len(got) != 1 || got[0].ID.SN != 1 {
		t.Fatalf("by UE: %+v", got)
	}
	if got := l.Select(Query{Label: "BTS-DoS"}); len(got) != 1 { // case-insensitive, matches Action too
		t.Fatalf("by label: %+v", got)
	}
	if got := l.Select(Query{Label: "issued"}); len(got) != 1 {
		t.Fatalf("by lifecycle state: %+v", got)
	}
	if got := l.Select(Query{Since: base.Add(30 * time.Minute)}); len(got) != 1 || got[0].ID.SN != 2 {
		t.Fatalf("by since: %+v", got)
	}
	if got := l.Select(Query{Until: base.Add(30 * time.Minute)}); len(got) != 1 || got[0].ID.SN != 1 {
		t.Fatalf("by until: %+v", got)
	}
}

func TestMissingStages(t *testing.T) {
	l := New(Options{})
	defer l.Close()
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

	full := ChainID{Node: "n", SN: 1}
	fullChain(l, full, 901, at)
	partial := ChainID{Node: "n", SN: 2}
	l.Record(Event{Chain: partial, Kind: KindWindow, At: at, Model: "autoencoder", Flagged: true})
	l.Flush()

	rec, _ := l.Chain(full)
	if missing := rec.MissingStages(); len(missing) != 0 {
		t.Fatalf("full chain reported missing stages %v", missing)
	}
	if !rec.HasMitigation("issued") || rec.HasMitigation("rolled-back") {
		t.Fatal("HasMitigation wrong")
	}
	rec, _ = l.Chain(partial)
	missing := rec.MissingStages()
	if len(missing) != 5 {
		t.Fatalf("partial chain missing %v, want 5 stages", missing)
	}
	for _, k := range missing {
		if k == KindWindow {
			t.Fatal("present stage reported missing")
		}
	}
}

func TestReadChainAndStoredChains(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store})
	defer l.Close()

	// A node with slashes exercises the fixed-width key parser.
	ids := []ChainID{
		{Node: "site-a/gnb-2", SN: 3},
		{Node: "gnb-001", SN: 10},
		{Node: "gnb-001", SN: 2},
	}
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for _, id := range ids {
		fullChain(l, id, 901, at)
	}
	l.Flush()

	rec, err := ReadChain(store, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 6 {
		t.Fatalf("reconstructed %d events, want 6", len(rec.Events))
	}
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].At.Before(rec.Events[i-1].At) {
			t.Fatalf("events out of causal order: %+v", rec.Events)
		}
	}
	if _, err := ReadChain(store, ChainID{Node: "ghost", SN: 1}); err == nil {
		t.Fatal("ReadChain of unknown chain succeeded")
	}

	got := StoredChains(store)
	want := []ChainID{{Node: "gnb-001", SN: 2}, {Node: "gnb-001", SN: 10}, {Node: "site-a/gnb-2", SN: 3}}
	if len(got) != len(want) {
		t.Fatalf("StoredChains = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StoredChains[%d] = %v, want %v (numeric SN order within node)", i, got[i], want[i])
		}
	}
}

func TestParseEventKey(t *testing.T) {
	id := ChainID{Node: "region/site/gnb", SN: 77}
	gotID, idx, ok := parseEventKey(eventKey(id, 12))
	if !ok || gotID != id || idx != 12 {
		t.Fatalf("parseEventKey = %v %d %v", gotID, idx, ok)
	}
	for _, bad := range []string{"wrong/gnb/1/0", "ev/", "ev/n", "ev/n/x/0", "ev/n/1/x"} {
		if _, _, ok := parseEventKey(bad); ok {
			t.Fatalf("parseEventKey(%q) accepted", bad)
		}
	}
}

func TestServeProv(t *testing.T) {
	repl := New(Options{})
	old := SetActive(repl)
	defer func() { SetActive(old).Close() }()
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	fullChain(repl, ChainID{Node: "gnb-001", SN: 1}, 901, at)
	repl.Flush()

	srv := httptest.NewServer(obs.NewHandler(obs.Default, obs.DefaultTracer))
	defer srv.Close()

	get := func(query string) []ChainRecord {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/prov" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /prov%s: HTTP %d", query, resp.StatusCode)
		}
		var out []ChainRecord
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := get(""); len(got) != 1 || got[0].Key != "gnb-001/1" {
		t.Fatalf("GET /prov = %+v", got)
	}
	if got := get("?chain=gnb-001/1&label=bts-dos&ue=901&since=2026-08-06T11:00:00Z"); len(got) != 1 {
		t.Fatalf("filtered query = %+v", got)
	}
	if got := get("?label=nothing-here"); len(got) != 0 {
		t.Fatalf("want empty slice, got %+v", got)
	}
	// Events survive the HTTP roundtrip with digests intact.
	full := get("?chain=gnb-001/1")[0]
	if full.Events[4].Digest != DigestText("prompt") {
		t.Fatalf("digest corrupted over HTTP: %v", full.Events[4].Digest)
	}

	for _, bad := range []string{"?chain=nochain", "?ue=x", "?since=yesterday"} {
		resp, err := srv.Client().Get(srv.URL + "/prov" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("GET /prov%s: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestWriteChain(t *testing.T) {
	l := New(Options{})
	defer l.Close()
	id := ChainID{Node: "gnb-001", SN: 1}
	fullChain(l, id, 901, time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	l.Flush()
	rec, _ := l.Chain(id)

	var sb strings.Builder
	WriteChain(&sb, rec)
	out := sb.String()
	for _, want := range []string{
		"chain gnb-001/1",
		"emit", "10 records",
		"indication routed",
		"score=4.200000 threshold=1.500000 FLAGGED",
		"verdict=anomalous class=bts-dos confidence=0.90",
		"action#1 release-ue → issued target=ue/901 ue=901",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteChain output missing %q:\n%s", want, out)
		}
	}
}
