package prov

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// ChainRecord is one reconstructed evidence chain, events in causal
// (ledger) order.
type ChainRecord struct {
	ID        ChainID `json:"id"`
	Key       string  `json:"key"` // the "node/sn" spelling, = trace key
	Events    []Event `json:"events"`
	Truncated bool    `json:"truncated,omitempty"`
}

// Has reports whether the chain contains at least one event of kind k.
func (c ChainRecord) Has(k Kind) bool {
	for i := range c.Events {
		if c.Events[i].Kind == k {
			return true
		}
	}
	return false
}

// HasMitigation reports whether the chain contains a mitigation
// transition with the given lifecycle state label.
func (c ChainRecord) HasMitigation(state string) bool {
	for i := range c.Events {
		if c.Events[i].Kind == KindMitigation && c.Events[i].Label == state {
			return true
		}
	}
	return false
}

// MissingStages lists, for a chain that reached a mitigation, the
// causal stages an auditor expects but the ledger lacks. An empty
// result means the evidence chain is complete end to end.
func (c ChainRecord) MissingStages() []Kind {
	var missing []Kind
	for _, k := range []Kind{KindEmit, KindIndication, KindWindow, KindAlert, KindVerdict, KindMitigation} {
		if !c.Has(k) {
			missing = append(missing, k)
		}
	}
	return missing
}

// Query selects chains from a ledger.
type Query struct {
	// Chain, when its Node is non-empty, selects exactly one chain.
	Chain ChainID
	// UE, when non-nil, requires an event targeting that UE context.
	UE *uint64
	// Label, when non-empty, requires an event whose Label or Action
	// contains it (case-insensitive) — e.g. an attack class like
	// "bts-dos" or a lifecycle state like "issued".
	Label string
	// Since/Until bound the event time range (zero = unbounded).
	Since, Until time.Time
}

func (q Query) matches(c ChainRecord) bool {
	if q.Chain.Node != "" && c.ID != q.Chain {
		return false
	}
	if q.UE != nil {
		ok := false
		for i := range c.Events {
			if c.Events[i].UEID == *q.UE && c.Events[i].UEID != 0 {
				ok = true
				break
			}
		}
		if !ok && *q.UE != 0 {
			return false
		}
	}
	if q.Label != "" {
		want := strings.ToLower(q.Label)
		ok := false
		for i := range c.Events {
			if strings.Contains(strings.ToLower(c.Events[i].Label), want) ||
				strings.Contains(strings.ToLower(c.Events[i].Action), want) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if !q.Since.IsZero() || !q.Until.IsZero() {
		ok := false
		for i := range c.Events {
			at := c.Events[i].At
			if !q.Since.IsZero() && at.Before(q.Since) {
				continue
			}
			if !q.Until.IsZero() && at.After(q.Until) {
				continue
			}
			ok = true
			break
		}
		if !ok {
			return false
		}
	}
	return true
}

// Chain returns one chain from memory; ok is false if unknown (it may
// still exist in the SDL — see ReadChain).
func (l *Ledger) Chain(id ChainID) (ChainRecord, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	c, ok := l.chains[id]
	if !ok {
		return ChainRecord{}, false
	}
	return snapshotLocked(id, c), true
}

// Chains returns every retained chain, oldest first.
func (l *Ledger) Chains() []ChainRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]ChainRecord, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, snapshotLocked(id, l.chains[id]))
	}
	return out
}

// Select returns the retained chains matching q, oldest first.
func (l *Ledger) Select(q Query) []ChainRecord {
	var out []ChainRecord
	for _, c := range l.Chains() {
		if q.matches(c) {
			out = append(out, c)
		}
	}
	return out
}

func snapshotLocked(id ChainID, c *chain) ChainRecord {
	return ChainRecord{
		ID:        id,
		Key:       id.String(),
		Events:    append([]Event(nil), c.events...),
		Truncated: c.truncated,
	}
}

// ReadChain reconstructs one chain from the SDL, for auditing after
// the ledger (or the process that owned it) is gone.
func ReadChain(store *sdl.Store, id ChainID) (ChainRecord, error) {
	all := store.GetAll(Namespace, keyPrefix(id))
	if len(all) == 0 {
		return ChainRecord{}, fmt.Errorf("prov: no persisted chain %s", id)
	}
	type kv struct {
		idx  int
		data []byte
	}
	pairs := make([]kv, 0, len(all))
	for k, v := range all {
		_, idx, ok := parseEventKey(k)
		if !ok {
			continue
		}
		pairs = append(pairs, kv{idx, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].idx < pairs[j].idx })
	rec := ChainRecord{ID: id, Key: id.String(), Events: make([]Event, 0, len(pairs))}
	for _, p := range pairs {
		var ev Event
		if err := json.Unmarshal(p.data, &ev); err != nil {
			return ChainRecord{}, fmt.Errorf("prov: chain %s: %w", id, err)
		}
		rec.Events = append(rec.Events, ev)
	}
	return rec, nil
}

// StoredChains lists the chain IDs persisted in the SDL, ordered by
// node then sequence number.
func StoredChains(store *sdl.Store) []ChainID {
	seen := make(map[ChainID]bool)
	var out []ChainID
	for _, k := range store.Keys(Namespace, "ev/") {
		id, _, ok := parseEventKey(k)
		if ok && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].SN < out[j].SN
	})
	return out
}

// parseEventKey inverts eventKey: "ev/<node>/<sn>/<idx>". The node may
// contain slashes; sn and idx are the fixed-width trailing segments.
func parseEventKey(key string) (ChainID, int, bool) {
	rest, ok := strings.CutPrefix(key, "ev/")
	if !ok {
		return ChainID{}, 0, false
	}
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return ChainID{}, 0, false
	}
	idx, err := strconv.Atoi(rest[j+1:])
	if err != nil {
		return ChainID{}, 0, false
	}
	rest = rest[:j]
	i := strings.LastIndexByte(rest, '/')
	if i <= 0 {
		return ChainID{}, 0, false
	}
	sn, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return ChainID{}, 0, false
	}
	return ChainID{Node: rest[:i], SN: sn}, idx, true
}

// init mounts the query endpoint on the obs HTTP mux:
//
//	/prov                          every retained chain
//	/prov?chain=gnb-1/42           one chain
//	/prov?ue=5                     chains touching UE 5
//	/prov?label=bts-dos            chains mentioning an attack/state label
//	/prov?since=...&until=...      RFC 3339 time bounds
func init() {
	obs.Handle("/prov", http.HandlerFunc(serveProv))
}

func serveProv(w http.ResponseWriter, r *http.Request) {
	var q Query
	qs := r.URL.Query()
	if s := qs.Get("chain"); s != "" {
		id, err := ParseChainID(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q.Chain = id
	}
	if s := qs.Get("ue"); s != "" {
		ue, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad ue: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.UE = &ue
	}
	q.Label = qs.Get("label")
	for name, dst := range map[string]*time.Time{"since": &q.Since, "until": &q.Until} {
		if s := qs.Get(name); s != "" {
			t, err := time.Parse(time.RFC3339, s)
			if err != nil {
				http.Error(w, "bad "+name+": "+err.Error(), http.StatusBadRequest)
				return
			}
			*dst = t
		}
	}
	chains := Active().Select(q)
	if chains == nil {
		chains = []ChainRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(chains)
}

// WriteChain pretty-prints one evidence chain for a human auditor:
// every link with its timestamps, digests, and — for detector events —
// the exact score and threshold that fired. Shared by xsec-audit and
// debugging sessions against /prov output.
func WriteChain(w io.Writer, c ChainRecord) {
	fmt.Fprintf(w, "chain %s  (%d events", c.Key, len(c.Events))
	if c.Truncated {
		fmt.Fprint(w, ", truncated")
	}
	fmt.Fprintln(w, ")")
	for i, ev := range c.Events {
		fmt.Fprintf(w, "  [%d] %s  %-10s", i+1, ev.At.Format("15:04:05.000000"), ev.Kind)
		switch ev.Kind {
		case KindEmit:
			fmt.Fprintf(w, " %d records, seq %d..%d, batch digest %s", ev.Records, ev.SeqFirst, ev.SeqLast, ev.Digest)
		case KindTransport, KindIndication:
			if ev.Label != "" {
				fmt.Fprintf(w, " %s", ev.Label)
			}
		case KindWindow:
			verdictMark := "benign"
			if ev.Flagged {
				verdictMark = "FLAGGED"
			}
			fmt.Fprintf(w, " model=%s score=%.6f threshold=%.6f %s", ev.Model, ev.Score, ev.Threshold, verdictMark)
			if ev.Count > 1 {
				fmt.Fprintf(w, " (×%d windows, max score shown)", ev.Count)
			}
			fmt.Fprintf(w, "\n%swindow seq %d..%d, feature digest %s", strings.Repeat(" ", 34), ev.SeqFirst, ev.SeqLast, ev.Digest)
		case KindAlert:
			fmt.Fprintf(w, " model=%s score=%.6f threshold=%.6f", ev.Model, ev.Score, ev.Threshold)
			if ev.Label != "" {
				fmt.Fprintf(w, " (%s)", ev.Label)
			}
		case KindVerdict:
			fmt.Fprintf(w, " verdict=%s", ev.Label)
			if ev.Action != "" {
				fmt.Fprintf(w, " class=%s", ev.Action)
			}
			if ev.Score > 0 {
				fmt.Fprintf(w, " confidence=%.2f", ev.Score)
			}
			if ev.Digest != 0 {
				fmt.Fprintf(w, " prompt digest %s", ev.Digest)
			}
		case KindMitigation:
			fmt.Fprintf(w, " action#%d %s → %s", ev.ActionID, ev.Action, ev.Label)
			if ev.Target != "" {
				fmt.Fprintf(w, " target=%s", ev.Target)
			}
			if ev.UEID != 0 {
				fmt.Fprintf(w, " ue=%d", ev.UEID)
			}
		case KindMigration:
			fmt.Fprintf(w, " %s ue=%d seq %d..%d", ev.Label, ev.UEID, ev.SeqFirst, ev.SeqLast)
			if ev.Target != "" {
				fmt.Fprintf(w, " dest=%s", ev.Target)
			}
		case KindFleet:
			fmt.Fprintf(w, " instance=%s -> %s", ev.Target, ev.Label)
		}
		if ev.Note != "" {
			fmt.Fprintf(w, "\n%snote: %s", strings.Repeat(" ", 34), ev.Note)
		}
		fmt.Fprintln(w)
	}
}
