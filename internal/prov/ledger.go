package prov

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Namespace is the dedicated SDL namespace chains persist to. Keys are
// "ev/<node>/<sn>/<idx>" with the sequence number and event index
// zero-padded so lexicographic SDL prefix scans return causal order.
const Namespace = "prov/ledger"

// Options configures a Ledger. The zero value gives a memory-only
// ledger with the defaults below.
type Options struct {
	// Store is the SDL to persist chains into; nil keeps the ledger
	// memory-only (events remain queryable until eviction).
	Store *sdl.Store
	// Buffer is the recording channel depth; events beyond it are
	// dropped (and counted) rather than blocking the pipeline.
	Buffer int
	// MaxChains bounds retention: beyond it the oldest chain is evicted
	// from memory and its SDL keys deleted.
	MaxChains int
	// MaxEventsPerChain caps one chain's event list; further events are
	// dropped and the chain marked truncated.
	MaxEventsPerChain int
	// TTL, when positive, sets a time-to-live on persisted SDL keys so
	// a shared store ages provenance out even if the ledger is gone.
	TTL time.Duration
	// Clock is injectable for tests.
	Clock func() time.Time
}

// Defaults for Options fields left zero.
const (
	DefaultBuffer            = 4096
	DefaultMaxChains         = 1024
	DefaultMaxEventsPerChain = 512
)

// Ledger is an append-only provenance store. Record is safe for
// concurrent use, never blocks, and allocates nothing; a single writer
// goroutine owns all mutation, coalescing runs of benign window
// observations and enforcing the retention bounds.
type Ledger struct {
	store *sdl.Store
	ttl   time.Duration
	clock func() time.Time

	maxChains int
	maxEvents int

	ch       chan Event
	flushReq chan chan struct{}
	stop     chan struct{}
	done     chan struct{}

	closed  atomic.Bool
	dropped atomic.Uint64
	evicted atomic.Uint64

	mu     sync.RWMutex
	chains map[ChainID]*chain
	order  []ChainID // insertion order, for FIFO eviction
}

type chain struct {
	events    []Event
	truncated bool
}

var (
	obsEvents  = obs.NewCounter("xsec_prov_events_total", "Provenance events accepted by the ledger writer.")
	obsDropped = obs.NewCounter("xsec_prov_dropped_total", "Provenance events dropped because the ledger buffer was full or closed.")
	obsEvicted = obs.NewCounter("xsec_prov_chains_evicted_total", "Provenance chains evicted to enforce bounded retention.")
)

// New starts a ledger and its writer goroutine. Call Close to stop it.
func New(o Options) *Ledger {
	l := newLedger(o)
	go l.run()
	return l
}

// newLedger builds a ledger without starting the writer; tests use it
// to exercise the full-buffer drop path deterministically.
func newLedger(o Options) *Ledger {
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	if o.MaxChains <= 0 {
		o.MaxChains = DefaultMaxChains
	}
	if o.MaxEventsPerChain <= 0 {
		o.MaxEventsPerChain = DefaultMaxEventsPerChain
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return &Ledger{
		store:     o.Store,
		ttl:       o.TTL,
		clock:     o.Clock,
		maxChains: o.MaxChains,
		maxEvents: o.MaxEventsPerChain,
		ch:        make(chan Event, o.Buffer),
		flushReq:  make(chan chan struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		chains:    make(map[ChainID]*chain),
	}
}

// Record offers one event to the ledger. It never blocks: when the
// buffer is full (or the ledger closed) the event is dropped and
// counted. The fast path is a closed-flag load and a channel send of a
// fixed-size struct — no allocation.
func (l *Ledger) Record(ev Event) {
	if l.closed.Load() {
		l.dropped.Add(1)
		obsDropped.Inc()
		return
	}
	select {
	case l.ch <- ev:
	default:
		l.dropped.Add(1)
		obsDropped.Inc()
	}
}

// run is the writer goroutine: the only mutator of chain state.
func (l *Ledger) run() {
	for {
		select {
		case ev := <-l.ch:
			l.handle(ev)
		case ack := <-l.flushReq:
			l.drain()
			close(ack)
		case <-l.stop:
			l.drain()
			close(l.done)
			return
		}
	}
}

func (l *Ledger) drain() {
	for {
		select {
		case ev := <-l.ch:
			l.handle(ev)
		default:
			return
		}
	}
}

func (l *Ledger) handle(ev Event) {
	if ev.At.IsZero() {
		ev.At = l.clock()
	}
	if ev.Count == 0 {
		ev.Count = 1
	}
	obsEvents.Inc()

	l.mu.Lock()
	c := l.chains[ev.Chain]
	if c == nil {
		c = &chain{}
		l.chains[ev.Chain] = c
		l.order = append(l.order, ev.Chain)
		l.evictLocked()
	}

	// Runs of benign window observations for the same model coalesce
	// into one event: Count accumulates, Score keeps the worst seen,
	// and the sequence range / digest track the latest window. This
	// bounds chain growth in the steady state (the overwhelmingly
	// common case is "window scored, nothing fired").
	if n := len(c.events); n > 0 && ev.Kind == KindWindow && !ev.Flagged {
		last := &c.events[n-1]
		if last.Kind == KindWindow && !last.Flagged && last.Model == ev.Model {
			last.Count += ev.Count
			last.At = ev.At
			last.SeqLast = ev.SeqLast
			last.Digest = ev.Digest
			if ev.Score > last.Score {
				last.Score = ev.Score
			}
			l.persistLocked(ev.Chain, n-1, *last)
			l.mu.Unlock()
			return
		}
	}

	if len(c.events) >= l.maxEvents {
		c.truncated = true
		l.mu.Unlock()
		return
	}
	c.events = append(c.events, ev)
	l.persistLocked(ev.Chain, len(c.events)-1, ev)
	l.mu.Unlock()
}

// evictLocked enforces MaxChains by dropping the oldest chains and
// deleting their persisted keys.
func (l *Ledger) evictLocked() {
	for len(l.order) > l.maxChains {
		id := l.order[0]
		l.order = l.order[1:]
		delete(l.chains, id)
		l.evicted.Add(1)
		obsEvicted.Inc()
		if l.store != nil {
			for _, k := range l.store.Keys(Namespace, keyPrefix(id)) {
				l.store.Delete(Namespace, k)
			}
		}
	}
}

func (l *Ledger) persistLocked(id ChainID, idx int, ev Event) {
	if l.store == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return // Event is marshal-safe by construction; never reached.
	}
	// The marshal buffer is single-use: hand it to the store instead of
	// paying a defensive copy on every persisted event.
	l.store.SetOwnedTTL(Namespace, eventKey(id, idx), data, l.ttl)
}

// keyPrefix is the SDL key prefix holding one chain's events.
func keyPrefix(id ChainID) string {
	return fmt.Sprintf("ev/%s/%020d/", id.Node, id.SN)
}

// eventKey is the SDL key for one event of a chain.
func eventKey(id ChainID, idx int) string {
	return fmt.Sprintf("ev/%s/%020d/%04d", id.Node, id.SN, idx)
}

// Flush blocks until every event recorded before the call has been
// applied to chain state (and the SDL, when persisting).
func (l *Ledger) Flush() {
	ack := make(chan struct{})
	select {
	case l.flushReq <- ack:
		select {
		case <-ack:
		case <-l.done:
		}
	case <-l.done:
	}
}

// Close drains outstanding events and stops the writer. Records issued
// after Close are dropped (and counted); the event channel is never
// closed, so late recorders cannot panic.
func (l *Ledger) Close() {
	if l.closed.CompareAndSwap(false, true) {
		close(l.stop)
	}
	<-l.done
}

// Dropped reports how many events were lost to backpressure or
// post-Close recording.
func (l *Ledger) Dropped() uint64 { return l.dropped.Load() }

// Evicted reports how many chains retention has discarded.
func (l *Ledger) Evicted() uint64 { return l.evicted.Load() }

// ChainCount reports how many chains are held in memory.
func (l *Ledger) ChainCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.chains)
}

// active is the process-wide ledger pipeline packages record into. It
// starts memory-only so instrumentation is always safe to call; core
// swaps in an SDL-backed ledger at framework start.
var active atomic.Pointer[Ledger]

func init() {
	active.Store(New(Options{}))
	obs.NewGaugeFunc("xsec_prov_chains", "Provenance chains retained in memory.", func() float64 {
		return float64(Active().ChainCount())
	})
}

// Active returns the process-wide ledger.
func Active() *Ledger { return active.Load() }

// SetActive installs l as the process-wide ledger and returns the
// previous one (which the caller should Close once quiescent).
func SetActive(l *Ledger) *Ledger { return active.Swap(l) }

// Record offers an event to the process-wide ledger.
func Record(ev Event) { active.Load().Record(ev) }
