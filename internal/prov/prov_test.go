package prov

import (
	"encoding/json"
	"testing"

	"github.com/6g-xsec/xsec/internal/mobiflow"
)

func TestChainIDRoundtrip(t *testing.T) {
	for _, id := range []ChainID{
		{Node: "gnb-001", SN: 0},
		{Node: "gnb-oai-42", SN: 1337},
		{Node: "region/site/gnb", SN: 9}, // nodes may contain slashes
	} {
		got, err := ParseChainID(id.String())
		if err != nil {
			t.Fatalf("ParseChainID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("roundtrip %q = %+v, want %+v", id.String(), got, id)
		}
	}
}

func TestParseChainIDErrors(t *testing.T) {
	for _, s := range []string{"", "gnb-001", "gnb-001/x", "/5", "gnb/1/z"} {
		if id, err := ParseChainID(s); err == nil {
			t.Fatalf("ParseChainID(%q) = %+v, want error", s, id)
		}
	}
}

func TestKindJSONRoundtrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != k {
			t.Fatalf("roundtrip %v → %s → %v", k, data, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"warp"`), &k); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	w := []float64{0.1, 0.2, 0.3}
	if DigestFloats(w) != DigestFloats([]float64{0.1, 0.2, 0.3}) {
		t.Fatal("digest not deterministic")
	}
	if DigestFloats(w) == DigestFloats([]float64{0.1, 0.2, 0.30000001}) {
		t.Fatal("digest insensitive to a feature change")
	}
	// The string terminator keeps concatenations distinguishable.
	if NewDigest().Str("ab").Str("c") == NewDigest().Str("a").Str("bc") {
		t.Fatal(`digest("ab","c") == digest("a","bc")`)
	}
}

func TestDigestRecords(t *testing.T) {
	tr := mobiflow.Trace{
		{Seq: 1, Msg: "RRCSetupRequest", UEID: 7},
		{Seq: 2, Msg: "RRCSetup", UEID: 7},
	}
	d := DigestRecords(tr)
	if d == 0 || d == NewDigest() {
		t.Fatalf("degenerate digest %v", d)
	}
	tampered := mobiflow.Trace{
		{Seq: 1, Msg: "RRCSetupRequest", UEID: 7},
		{Seq: 2, Msg: "RRCSetup", UEID: 8}, // different UE context
	}
	if DigestRecords(tampered) == d {
		t.Fatal("digest insensitive to record tampering")
	}
}

// TestDigestJSONSurvivesGenericDecode is the reason Digest marshals as
// hex: a uint64 pushed through a float64-based decoder (encoding/json's
// interface{} path) silently loses low bits.
func TestDigestJSONSurvivesGenericDecode(t *testing.T) {
	d := DigestText("a prompt with enough entropy to fill 64 bits")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var generic interface{}
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	redata, err := json.Marshal(generic)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(redata, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("digest %s corrupted to %s via generic JSON", d, back)
	}
	if len(d.String()) != 16 {
		t.Fatalf("String() = %q, want 16 hex digits", d.String())
	}
}

func TestEventJSONOmitsZeroFields(t *testing.T) {
	ev := Event{Chain: ChainID{Node: "n", SN: 1}, Kind: KindIndication}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"score", "threshold", "model", "label", "action", "note", "ue_id", "action_id"} {
		if _, ok := m[field]; ok {
			t.Fatalf("zero field %q serialized: %s", field, data)
		}
	}
}
