package prov

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/sdl"
)

// MigrationAudit is the verdict on one UE-state migration reconstructed
// from persisted chains: whether the destination chain's "in" link
// resolves to a matching "out" link on the source chain, and whether
// scoring resumed on the very indication that joined the chains (no
// unscored gap at the hand-off).
type MigrationAudit struct {
	UEID uint64 `json:"ue_id"`
	// From is the source chain (the UE's last indication on the old
	// owner); To is the destination chain (the first indication scored
	// after restore on the new owner).
	From ChainID `json:"from"`
	To   ChainID `json:"to"`
	// Joined reports that the source chain exists and carries a
	// migration "out" event for the same UE.
	Joined bool `json:"joined"`
	// Continuous reports that the destination chain — the indication
	// that carried the migration join — also carries a scored window:
	// the first post-migration indication was scored with the restored
	// history installed (it rebuilt the UE's feature/identity state and
	// window context), so detection resumed at the join with no
	// unscored hand-off gap.
	Continuous bool `json:"continuous"`
	// Reachback reports the stronger, sequence-level witness: a window
	// on the destination chain whose range starts at or before the
	// migrated state's last record, meaning restored records sit inside
	// the first post-migration scored window itself. Workers window a
	// mixed per-shard stream, so this holds when the UE's records are
	// contiguous (single-UE attacks) and is best-effort for interleaved
	// multi-UE floods — there the boundary-spanning window lands on a
	// neighboring chain of the same node. Informational; not part of OK.
	Reachback bool `json:"reachback"`
	// Err explains a failed check.
	Err string `json:"err,omitempty"`
}

// OK reports a fully verified migration.
func (a MigrationAudit) OK() bool { return a.Joined && a.Continuous }

// AuditMigrations reconstructs every migration link persisted in the
// store and verifies the auditability contract of UE-state migration:
// each "in" event must join to an "out" event on the chain its Note
// names, and the chain carrying the join must show a scored window —
// detection resumed on the first post-migration indication. xsec-audit
// and the federation tests share this.
func AuditMigrations(store *sdl.Store) []MigrationAudit {
	var out []MigrationAudit
	for _, id := range StoredChains(store) {
		rec, err := ReadChain(store, id)
		if err != nil {
			continue
		}
		for _, ev := range rec.Events {
			if ev.Kind != KindMigration || ev.Label != "in" {
				continue
			}
			a := MigrationAudit{UEID: ev.UEID, To: id}
			src, perr := ParseChainID(ev.Note)
			if perr != nil {
				a.Err = fmt.Sprintf("unparseable source chain %q: %v", ev.Note, perr)
				out = append(out, a)
				continue
			}
			a.From = src
			srcRec, rerr := ReadChain(store, src)
			if rerr != nil {
				a.Err = fmt.Sprintf("source chain not persisted: %v", rerr)
				out = append(out, a)
				continue
			}
			for _, sev := range srcRec.Events {
				if sev.Kind == KindMigration && sev.Label == "out" && sev.UEID == ev.UEID {
					a.Joined = true
					break
				}
			}
			if !a.Joined {
				a.Err = "source chain lacks a migration out event for this UE"
			}
			for _, dev := range rec.Events {
				if dev.Kind != KindWindow {
					continue
				}
				a.Continuous = true
				if dev.SeqFirst <= ev.SeqLast {
					a.Reachback = true
					break
				}
			}
			if !a.Continuous && a.Err == "" {
				a.Err = "no scored window on the destination chain: the joining indication was never scored"
			}
			out = append(out, a)
		}
	}
	return out
}
