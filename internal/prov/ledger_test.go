package prov

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/sdl"
)

var testClock = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }

func TestLedgerCoalescesBenignWindows(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store, Clock: testClock})
	defer l.Close()

	id := ChainID{Node: "gnb-001", SN: 7}
	for i := 0; i < 5; i++ {
		l.Record(Event{
			Chain:    id,
			Kind:     KindWindow,
			SeqFirst: uint64(i + 1),
			SeqLast:  uint64(i + 4),
			Digest:   DigestFloats([]float64{float64(i)}),
			Model:    "autoencoder",
			Score:    0.1 * float64(i%3), // max is 0.2, at i=2
		})
	}
	l.Flush()

	rec, ok := l.Chain(id)
	if !ok {
		t.Fatal("chain missing")
	}
	if len(rec.Events) != 1 {
		t.Fatalf("benign run produced %d events, want 1 coalesced", len(rec.Events))
	}
	ev := rec.Events[0]
	if ev.Count != 5 {
		t.Fatalf("Count = %d, want 5", ev.Count)
	}
	if ev.Score != 0.2 {
		t.Fatalf("Score = %v, want max 0.2", ev.Score)
	}
	if ev.SeqLast != 8 || ev.Digest != DigestFloats([]float64{4}) {
		t.Fatalf("coalesced event does not track the latest window: %+v", ev)
	}
	// The SDL holds exactly one key for the chain: the coalesced event is
	// overwritten in place, not appended.
	if keys := store.Keys(Namespace, keyPrefix(id)); len(keys) != 1 {
		t.Fatalf("SDL keys = %v, want 1", keys)
	}
}

func TestLedgerFlaggedBreaksCoalescing(t *testing.T) {
	l := New(Options{Clock: testClock})
	defer l.Close()
	id := ChainID{Node: "n", SN: 1}

	l.Record(Event{Chain: id, Kind: KindWindow, Model: "autoencoder", Score: 0.1})
	l.Record(Event{Chain: id, Kind: KindWindow, Model: "autoencoder", Score: 5, Flagged: true})
	l.Record(Event{Chain: id, Kind: KindWindow, Model: "autoencoder", Score: 0.1})
	l.Record(Event{Chain: id, Kind: KindWindow, Model: "lstm", Score: 0.1}) // model switch
	l.Flush()

	rec, _ := l.Chain(id)
	if len(rec.Events) != 4 {
		t.Fatalf("got %d events, want 4 (flagged and model switches never merge): %+v", len(rec.Events), rec.Events)
	}
	if !rec.Events[1].Flagged || rec.Events[1].Score != 5 {
		t.Fatalf("flagged event mangled: %+v", rec.Events[1])
	}
}

func TestLedgerPersistenceParity(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store, Clock: testClock})
	defer l.Close()
	id := ChainID{Node: "gnb-001", SN: 42}

	l.Record(Event{Chain: id, Kind: KindEmit, Records: 12, SeqFirst: 1, SeqLast: 12, Digest: 0xabcd})
	l.Record(Event{Chain: id, Kind: KindIndication, Label: "routed"})
	l.Record(Event{Chain: id, Kind: KindWindow, Model: "autoencoder", Score: 3.2, Threshold: 1.1, Flagged: true})
	l.Record(Event{Chain: id, Kind: KindVerdict, Label: "anomalous", Action: "bts-dos", Score: 0.9})
	l.Record(Event{Chain: id, Kind: KindMitigation, ActionID: 3, Action: "release-ue", Label: "issued", UEID: 901})
	l.Flush()

	mem, ok := l.Chain(id)
	if !ok {
		t.Fatal("chain missing from memory")
	}
	disk, err := ReadChain(store, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk.Events) != len(mem.Events) {
		t.Fatalf("disk %d events, memory %d", len(disk.Events), len(mem.Events))
	}
	for i := range mem.Events {
		if disk.Events[i] != mem.Events[i] {
			t.Fatalf("event %d diverges:\n  disk   %+v\n  memory %+v", i, disk.Events[i], mem.Events[i])
		}
	}
}

func TestLedgerEvictionBoundsRetentionAndCleansSDL(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store, MaxChains: 2, Clock: testClock})
	defer l.Close()

	for sn := uint64(1); sn <= 3; sn++ {
		l.Record(Event{Chain: ChainID{Node: "n", SN: sn}, Kind: KindEmit})
	}
	l.Flush()

	if got := l.ChainCount(); got != 2 {
		t.Fatalf("ChainCount = %d, want 2", got)
	}
	if got := l.Evicted(); got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
	if _, ok := l.Chain(ChainID{Node: "n", SN: 1}); ok {
		t.Fatal("oldest chain still in memory")
	}
	// Eviction deletes the persisted keys too.
	if keys := store.Keys(Namespace, keyPrefix(ChainID{Node: "n", SN: 1})); len(keys) != 0 {
		t.Fatalf("evicted chain keys remain: %v", keys)
	}
	if _, ok := l.Chain(ChainID{Node: "n", SN: 3}); !ok {
		t.Fatal("newest chain lost")
	}
}

func TestLedgerTruncatesLongChains(t *testing.T) {
	l := New(Options{MaxEventsPerChain: 3, Clock: testClock})
	defer l.Close()
	id := ChainID{Node: "n", SN: 1}
	for i := 0; i < 6; i++ {
		l.Record(Event{Chain: id, Kind: KindWindow, Model: "autoencoder", Score: float64(i), Flagged: true})
	}
	l.Flush()
	rec, _ := l.Chain(id)
	if len(rec.Events) != 3 || !rec.Truncated {
		t.Fatalf("events = %d, truncated = %v; want 3, true", len(rec.Events), rec.Truncated)
	}
}

// TestLedgerDropsWhenFull uses an unstarted writer so the buffer fills
// deterministically.
func TestLedgerDropsWhenFull(t *testing.T) {
	l := newLedger(Options{Buffer: 2})
	for i := 0; i < 5; i++ {
		l.Record(Event{Chain: ChainID{Node: "n", SN: 1}, Kind: KindEmit})
	}
	if got := l.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestLedgerRecordAfterCloseDropsWithoutPanic(t *testing.T) {
	l := New(Options{})
	l.Close()
	l.Record(Event{Chain: ChainID{Node: "n", SN: 1}})
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	l.Flush() // must not hang after Close
	l.Close() // idempotent
}

// TestLedgerRecordNoAllocs is the hot-path contract: recording a benign
// window — the overwhelmingly common case on the scoring path — performs
// zero allocations, like the obs fast paths.
func TestLedgerRecordNoAllocs(t *testing.T) {
	l := New(Options{})
	defer l.Close()
	w := []float64{0.25, 0.5, 0.75, 1}
	ev := Event{
		Chain:     ChainID{Node: "gnb-001", SN: 9},
		Kind:      KindWindow,
		Model:     "autoencoder",
		Score:     0.01,
		Threshold: 1.5,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Digest = DigestFloats(w)
		l.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("benign Record allocates %.1f per op, want 0", allocs)
	}
}

func TestLedgerConcurrentRecordAndQuery(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store, MaxChains: 16})
	defer l.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(Event{
					Chain: ChainID{Node: fmt.Sprintf("gnb-%03d", g), SN: uint64(i % 8)},
					Kind:  Kind(i % int(kindCount)),
					Model: "autoencoder",
					Score: float64(i),
				})
			}
		}(g)
	}
	wg.Add(1)
	go func() { // concurrent in-memory queries
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, c := range l.Select(Query{Label: "routed"}) {
				_ = c.Has(KindWindow)
			}
			l.ChainCount()
		}
	}()
	wg.Add(1)
	go func() { // concurrent SDL scans, as a live /prov reader would
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range StoredChains(store) {
				_, _ = ReadChain(store, id)
			}
		}
	}()

	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	l.Flush()
	if l.ChainCount() == 0 {
		t.Fatal("no chains retained after concurrent load")
	}
	if l.ChainCount() > 16 {
		t.Fatalf("ChainCount = %d exceeds MaxChains", l.ChainCount())
	}
}

func TestActiveLedgerSwap(t *testing.T) {
	repl := New(Options{})
	old := SetActive(repl)
	defer func() { SetActive(old).Close() }()

	Record(Event{Chain: ChainID{Node: "n", SN: 5}, Kind: KindEmit})
	repl.Flush()
	if _, ok := repl.Chain(ChainID{Node: "n", SN: 5}); !ok {
		t.Fatal("package Record did not reach the active ledger")
	}
}
