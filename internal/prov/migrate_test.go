package prov

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/sdl"
)

func TestAuditMigrations(t *testing.T) {
	store := sdl.New()
	l := New(Options{Store: store})
	defer l.Close()
	at := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)

	// A fully joined, gap-free migration: out on the source chain, in on
	// the destination chain whose first window reaches back into the
	// migrated sequence range.
	src := ChainID{Node: "ric-a", SN: 40}
	dst := ChainID{Node: "ric-b", SN: 41}
	l.Record(Event{Chain: src, Kind: KindWindow, At: at, Model: "autoencoder", SeqFirst: 1, SeqLast: 16})
	l.Record(Event{Chain: src, Kind: KindMigration, At: at.Add(time.Millisecond),
		Label: "out", UEID: 7, SeqFirst: 1, SeqLast: 16, Target: "inst-b"})
	l.Record(Event{Chain: dst, Kind: KindMigration, At: at.Add(2 * time.Millisecond),
		Label: "in", UEID: 7, SeqFirst: 1, SeqLast: 16, Note: src.String()})
	l.Record(Event{Chain: dst, Kind: KindWindow, At: at.Add(3 * time.Millisecond),
		Model: "autoencoder", SeqFirst: 2, SeqLast: 17, Flagged: true})

	// An unjoined migration: the in link names a chain that was never
	// persisted.
	orphan := ChainID{Node: "ric-b", SN: 50}
	l.Record(Event{Chain: orphan, Kind: KindMigration, At: at.Add(4 * time.Millisecond),
		Label: "in", UEID: 8, SeqFirst: 5, SeqLast: 9, Note: "ric-ghost/1"})
	l.Record(Event{Chain: orphan, Kind: KindWindow, At: at.Add(5 * time.Millisecond),
		Model: "autoencoder", SeqFirst: 6, SeqLast: 10})

	// A joined migration with a scoring gap: the chain carrying the join
	// never scored a window — the restored state was installed but the
	// joining indication's detection never happened.
	gapSrc := ChainID{Node: "ric-a", SN: 60}
	gapDst := ChainID{Node: "ric-c", SN: 61}
	l.Record(Event{Chain: gapSrc, Kind: KindMigration, At: at.Add(6 * time.Millisecond),
		Label: "out", UEID: 9, SeqFirst: 1, SeqLast: 4, Target: "inst-c"})
	l.Record(Event{Chain: gapDst, Kind: KindMigration, At: at.Add(7 * time.Millisecond),
		Label: "in", UEID: 9, SeqFirst: 1, SeqLast: 4, Note: gapSrc.String()})

	// A joined migration of an interleaved-flood UE: the joining
	// indication scored a window, but the window's range starts after
	// the UE's own restored span (shared per-shard windows) — continuous
	// without the sequence-level reachback.
	farSrc := ChainID{Node: "ric-a", SN: 70}
	farDst := ChainID{Node: "ric-c", SN: 71}
	l.Record(Event{Chain: farSrc, Kind: KindMigration, At: at.Add(8 * time.Millisecond),
		Label: "out", UEID: 10, SeqFirst: 1, SeqLast: 4, Target: "inst-c"})
	l.Record(Event{Chain: farDst, Kind: KindMigration, At: at.Add(9 * time.Millisecond),
		Label: "in", UEID: 10, SeqFirst: 1, SeqLast: 4, Note: farSrc.String()})
	l.Record(Event{Chain: farDst, Kind: KindWindow, At: at.Add(10 * time.Millisecond),
		Model: "autoencoder", SeqFirst: 20, SeqLast: 35})
	l.Flush()

	audits := AuditMigrations(store)
	if len(audits) != 4 {
		t.Fatalf("AuditMigrations found %d migrations, want 4: %+v", len(audits), audits)
	}
	byUE := make(map[uint64]MigrationAudit)
	for _, a := range audits {
		byUE[a.UEID] = a
	}

	good := byUE[7]
	if !good.OK() || !good.Reachback || good.From != src || good.To != dst || good.Err != "" {
		t.Fatalf("joined migration audit = %+v", good)
	}
	if a := byUE[8]; a.Joined || a.OK() || a.Err == "" {
		t.Fatalf("orphan migration audit = %+v", a)
	}
	if a := byUE[9]; !a.Joined || a.Continuous || a.OK() || a.Err == "" {
		t.Fatalf("gapped migration audit = %+v", a)
	}
	if a := byUE[10]; !a.OK() || a.Reachback || a.Err != "" {
		t.Fatalf("interleaved migration audit = %+v", a)
	}
}
