// Package prov is the forensic provenance ledger of the 6G-XSec stack:
// an append-only, concurrency-safe record of the causal evidence chain
// behind every pipeline decision — MobiFlow batch digest → E2 indication
// → feature-window scores vs. thresholds → alert → LLM verdict →
// mitigation lifecycle — so an operator can ask "why was this UE flagged
// and why was this control issued?" and get an auditable answer instead
// of a reconstruction (MobiLLM, arXiv:2509.21634; the attack surface of
// unexplained xApp verdicts, arXiv:2406.12299).
//
// Every stage of one telemetry batch's journey shares a stable chain ID
// (the emitting node plus the E2 indication sequence number, the same
// identity obs.IndicationKey mints for spans). Pipeline packages record
// fixed-size Event structs into the active Ledger; recording is a
// non-blocking channel send and performs no allocation, so it is safe on
// the streaming-inference hot path even for benign windows (the common
// case). A single writer goroutine serializes events, coalesces runs of
// benign window observations, persists chains to the SDL, and enforces
// bounded retention.
package prov

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
)

// ChainID is the stable identity of one evidence chain: the E2 node that
// emitted the telemetry batch and the RIC indication sequence number.
// Its String form equals obs.IndicationKey(node, sn), so provenance
// chains, trace spans, and histogram exemplars all join on the same key.
type ChainID struct {
	Node string `json:"node"`
	SN   uint64 `json:"sn"`
}

// String renders "node/sn".
func (c ChainID) String() string {
	return c.Node + "/" + strconv.FormatUint(c.SN, 10)
}

// ParseChainID parses the "node/sn" spelling. The node may itself
// contain slashes; the sequence number is everything after the last one.
func ParseChainID(s string) (ChainID, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return ChainID{}, fmt.Errorf("prov: chain ID %q: want node/sn", s)
	}
	sn, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return ChainID{}, fmt.Errorf("prov: chain ID %q: %w", s, err)
	}
	if s[:i] == "" {
		return ChainID{}, fmt.Errorf("prov: chain ID %q: empty node", s)
	}
	return ChainID{Node: s[:i], SN: sn}, nil
}

// Kind discriminates the stages of an evidence chain.
type Kind uint8

// Chain stages, in causal order.
const (
	// KindEmit: the gNB agent drained telemetry and built the batch.
	KindEmit Kind = iota
	// KindTransport: the batch left the node over the E2 interface.
	KindTransport
	// KindIndication: the RIC E2 Termination received and routed the
	// indication toward xApp subscriptions.
	KindIndication
	// KindWindow: MobiWatch scored a feature window against a model
	// threshold (benign observations coalesce; flagged ones append).
	KindWindow
	// KindAlert: a flagged window was offered to the analyzer stream.
	KindAlert
	// KindVerdict: the LLM analyzer returned (or failed to return) a
	// usable verdict for the case.
	KindVerdict
	// KindMitigation: one lifecycle transition of a mitigation action.
	KindMitigation
	// KindMigration: a UE's detection state crossed a RIC-instance
	// boundary. The old owner records Label "out" on the chain of the
	// UE's last indication; the new owner records Label "in" on the
	// chain of the first indication scored after restore, with Note
	// carrying the source chain key — the link that joins the two
	// chains into one auditable history.
	KindMigration
	// KindFleet: an SMO fleet-plane membership transition — the
	// heartbeat failure detector marking an instance suspect, dead
	// (auto-evicted from the ring), or rejoined. Label carries the new
	// state, Target the instance ID, Note the reason.
	KindFleet

	kindCount
)

var kindNames = [...]string{
	"emit", "transport", "indication", "window", "alert", "verdict", "mitigation", "migration", "fleet",
}

// String returns the ledger spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("prov: kind: %w", err)
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("prov: unknown kind %q", s)
}

// Event is one link of an evidence chain. The struct is fixed-size and
// recording one is allocation-free; only the fields a stage needs are
// set, the rest stay zero and are omitted from the JSON form.
type Event struct {
	Chain ChainID   `json:"chain"`
	Kind  Kind      `json:"kind"`
	At    time.Time `json:"at"`

	// SeqFirst..SeqLast is the MobiFlow sequence range the event covers
	// (the batch for emit, the window for window/alert events).
	SeqFirst uint64 `json:"seq_first,omitempty"`
	SeqLast  uint64 `json:"seq_last,omitempty"`
	// Records is the batch size for emit events.
	Records uint32 `json:"records,omitempty"`
	// Count is how many observations a coalesced event summarizes
	// (runs of benign windows merge into one event; Score keeps the
	// maximum seen).
	Count uint32 `json:"count,omitempty"`

	// Digest fingerprints the evidence: the record batch (emit), the
	// encoded feature window (window/alert), or the LLM prompt (verdict).
	Digest Digest `json:"digest,omitempty"`

	// Model, Score, Threshold, and Flagged describe a detector decision.
	Model     string  `json:"model,omitempty"`
	Score     float64 `json:"score,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Flagged   bool    `json:"flagged,omitempty"`

	// Label carries the stage outcome: routing outcome for indications,
	// alert disposition, the LLM verdict, or the mitigation lifecycle
	// state.
	Label string `json:"label,omitempty"`
	// Action is the mitigation action class or attack classification.
	Action string `json:"action,omitempty"`
	// Target is what a mitigation acts on (e.g. "ue/5", "tmsi/1234").
	Target string `json:"target,omitempty"`
	// UEID is the UE context a control targets.
	UEID uint64 `json:"ue_id,omitempty"`
	// ActionID is the mitigation journal entry ID, joining the chain to
	// the mitigate/journal SDL namespace.
	ActionID uint64 `json:"action_id,omitempty"`
	// Note carries free-form context (suppression reasons, errors).
	Note string `json:"note,omitempty"`
}

// Digest is a 64-bit FNV-1a fingerprint, rendered as hex in JSON so the
// value survives encoders that truncate large integers to float64.
type Digest uint64

// fnv-1a parameters.
const (
	fnvOffset64 Digest = 14695981039346656037
	fnvPrime64  Digest = 1099511628211
)

// NewDigest returns the FNV-1a offset basis to accumulate into.
func NewDigest() Digest { return fnvOffset64 }

// Byte mixes one byte. All mixers are allocation-free by construction:
// they operate on the value receiver and return the updated digest.
func (d Digest) Byte(b byte) Digest { return (d ^ Digest(b)) * fnvPrime64 }

// U64 mixes an unsigned integer, little-endian.
func (d Digest) U64(v uint64) Digest {
	for i := 0; i < 8; i++ {
		d = d.Byte(byte(v >> (8 * i)))
	}
	return d
}

// F64 mixes a float through its IEEE-754 bits.
func (d Digest) F64(v float64) Digest { return d.U64(math.Float64bits(v)) }

// Str mixes a string plus a terminator so "ab","c" != "a","bc".
func (d Digest) Str(s string) Digest {
	for i := 0; i < len(s); i++ {
		d = d.Byte(s[i])
	}
	return d.Byte(0)
}

// Floats mixes a feature vector.
func (d Digest) Floats(vs []float64) Digest {
	for _, v := range vs {
		d = d.F64(v)
	}
	return d
}

// Vecs mixes a sequence of feature vectors.
func (d Digest) Vecs(vecs [][]float64) Digest {
	for _, v := range vecs {
		d = d.Floats(v)
	}
	return d
}

// Floats32 mixes a float32 feature vector through the same float64 bit
// pattern as Floats, so a window digested from the batched float32
// scoring path matches the float64 path digest when the values are
// exactly representable (feature vectors are: indicators and small
// fixed-point ratios).
func (d Digest) Floats32(vs []float32) Digest {
	for _, v := range vs {
		d = d.F64(float64(v))
	}
	return d
}

// String renders the digest as 16 hex digits.
func (d Digest) String() string {
	var buf [16]byte
	const hex = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		buf[i] = hex[(d>>(60-4*uint(i)))&0xf]
	}
	return string(buf[:])
}

// MarshalJSON renders the digest as a quoted hex string.
func (d Digest) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, d.String()), nil
}

// UnmarshalJSON parses the quoted hex form.
func (d *Digest) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("prov: digest: %w", err)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("prov: digest %q: %w", s, err)
	}
	*d = Digest(v)
	return nil
}

// DigestFloats fingerprints one flattened feature window.
func DigestFloats(vs []float64) Digest { return NewDigest().Floats(vs) }

// DigestFloats32 fingerprints one flattened float32 feature window.
func DigestFloats32(vs []float32) Digest { return NewDigest().Floats32(vs) }

// DigestText fingerprints a rendered prompt or response.
func DigestText(s string) Digest { return NewDigest().Str(s) }

// DigestRecords fingerprints a telemetry batch by sequence number,
// message name, and UE context — enough to detect tampering or loss
// between the gNB emission and what the detector scored.
func DigestRecords(tr mobiflow.Trace) Digest {
	d := NewDigest()
	for i := range tr {
		d = d.U64(tr[i].Seq).Str(tr[i].Msg).U64(tr[i].UEID)
	}
	return d
}
