package pcaplite

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Packet{
		{Timestamp: time.Unix(1, 2).UTC(), Iface: IfF1AP, Payload: []byte{1, 2, 3}},
		{Timestamp: time.Unix(3, 4).UTC(), Iface: IfNGAP, Payload: []byte{}},
		{Timestamp: time.Unix(5, 6).UTC(), Iface: IfF1AP, Payload: bytes.Repeat([]byte{9}, 500)},
	}
	for _, p := range in {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %d vs %d packets", len(in), len(out))
	}
}

func TestEmptyCapture(t *testing.T) {
	out, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(out) != 0 {
		t.Errorf("out=%v err=%v", out, err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("WRONGMAG___"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Packet{Timestamp: time.Unix(0, 0), Iface: IfF1AP, Payload: []byte{1, 2, 3, 4}})
	w.Flush()
	data := buf.Bytes()
	for cut := 9; cut < len(data); cut++ {
		if _, err := ReadAll(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("cut=%d: truncated capture accepted", cut)
		}
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	err := w.Write(Packet{Payload: make([]byte, MaxPacketSize+1)})
	if !errors.Is(err, ErrOversize) {
		t.Errorf("err = %v", err)
	}
}

func TestInterfaceString(t *testing.T) {
	if IfF1AP.String() != "F1AP" || IfNGAP.String() != "NGAP" {
		t.Error("interface names wrong")
	}
	if Interface(7).String() != "Interface(7)" {
		t.Error("unknown interface name wrong")
	}
}

// Property: arbitrary payload sequences round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, p := range payloads {
			if p == nil {
				p = []byte{}
			}
			if err := w.Write(Packet{Timestamp: time.Unix(int64(i), 0).UTC(), Iface: Interface(i % 2), Payload: p}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil || len(out) != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if p == nil {
				p = []byte{}
			}
			if !bytes.Equal(out[i].Payload, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
