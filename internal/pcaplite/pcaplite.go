// Package pcaplite implements a minimal packet-capture format for the
// instrumented F1AP/NGAP interfaces. The 6G-XSec dataset pipeline
// captures control-plane PDUs at these interfaces and later parses them
// into MOBIFLOW telemetry (§4 of the paper: "we instrument the F1AP and
// NGAP interface to obtain pcap streams, which are further parsed into
// MOBIFLOW security telemetry formats").
//
// The format is a 8-byte magic header followed by records:
//
//	timestamp int64 (ns, big endian)
//	iface     uint8
//	length    uint32 (big endian)
//	payload   length bytes
package pcaplite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Interface identifies which instrumented interface captured a packet.
type Interface uint8

// Capture interfaces.
const (
	IfF1AP Interface = iota
	IfNGAP
)

// String returns the interface name.
func (i Interface) String() string {
	switch i {
	case IfF1AP:
		return "F1AP"
	case IfNGAP:
		return "NGAP"
	}
	return fmt.Sprintf("Interface(%d)", uint8(i))
}

var magic = [8]byte{'X', 'S', 'E', 'C', 'P', 'C', 'A', '1'}

// MaxPacketSize bounds a single captured payload.
const MaxPacketSize = 1 << 20

// Errors.
var (
	ErrBadMagic  = errors.New("pcaplite: bad magic")
	ErrTruncated = errors.New("pcaplite: truncated capture")
	ErrOversize  = errors.New("pcaplite: packet exceeds size bound")
)

// Packet is one captured PDU.
type Packet struct {
	Timestamp time.Time
	Iface     Interface
	Payload   []byte
}

// Writer streams packets to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	began bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one packet.
func (pw *Writer) Write(p Packet) error {
	if len(p.Payload) > MaxPacketSize {
		return fmt.Errorf("writing %d bytes: %w", len(p.Payload), ErrOversize)
	}
	if !pw.began {
		if _, err := pw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("pcaplite: writing header: %w", err)
		}
		pw.began = true
	}
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(p.Timestamp.UnixNano()))
	hdr[8] = byte(p.Iface)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(p.Payload)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcaplite: writing record header: %w", err)
	}
	if _, err := pw.w.Write(p.Payload); err != nil {
		return fmt.Errorf("pcaplite: writing payload: %w", err)
	}
	return nil
}

// Flush drains buffered output to the underlying writer.
func (pw *Writer) Flush() error { return pw.w.Flush() }

// Reader streams packets from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	began bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next packet, or io.EOF at clean end of capture.
func (pr *Reader) Next() (Packet, error) {
	if !pr.began {
		var got [8]byte
		if _, err := io.ReadFull(pr.r, got[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Packet{}, io.EOF
			}
			return Packet{}, fmt.Errorf("pcaplite: reading header: %w", err)
		}
		if got != magic {
			return Packet{}, ErrBadMagic
		}
		pr.began = true
	}
	var hdr [13]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcaplite: reading record: %w", ErrTruncated)
	}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > MaxPacketSize {
		return Packet{}, fmt.Errorf("reading %d bytes: %w", n, ErrOversize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(pr.r, payload); err != nil {
		return Packet{}, fmt.Errorf("pcaplite: reading %d-byte payload: %w", n, ErrTruncated)
	}
	return Packet{
		Timestamp: time.Unix(0, int64(binary.BigEndian.Uint64(hdr[0:8]))).UTC(),
		Iface:     Interface(hdr[8]),
		Payload:   payload,
	}, nil
}

// ReadAll drains the capture.
func ReadAll(r io.Reader) ([]Packet, error) {
	pr := NewReader(r)
	var out []Packet
	for {
		p, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}
