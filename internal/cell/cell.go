// Package cell defines the cellular identifiers, security algorithms, and
// shared enumerations used across the protocol stack (RRC, NAS, F1AP,
// NGAP), the gNodeB/UE simulators, and the MobiFlow telemetry schema.
//
// The definitions follow the 3GPP 5G system (TS 23.003 identifiers,
// TS 33.501 algorithm identifiers) at the granularity the 6G-XSec paper's
// telemetry requires (Table 1): RNTI, 5G-S-TMSI, SUPI/SUCI, ciphering and
// integrity algorithms, and RRC establishment causes.
package cell

import (
	"fmt"
	"strings"
)

// RNTI is a Radio Network Temporary Identifier assigned by the DU when a
// UE performs random access (C-RNTI, 16 bits).
type RNTI uint16

// InvalidRNTI marks an unassigned RNTI. 0 and 0xFFFF are reserved values
// in TS 38.321.
const InvalidRNTI RNTI = 0

// String formats the RNTI in the 0xNNNN form used throughout the paper.
func (r RNTI) String() string { return fmt.Sprintf("0x%04X", uint16(r)) }

// TMSI is the 32-bit 5G-S-TMSI assigned by the AMF. It is the temporary
// subscriber identity visible in unprotected RRC/NAS messages.
type TMSI uint32

// InvalidTMSI marks an unassigned TMSI.
const InvalidTMSI TMSI = 0

// String formats the TMSI as 0xNNNNNNNN.
func (t TMSI) String() string { return fmt.Sprintf("0x%08X", uint32(t)) }

// SUPI is the Subscription Permanent Identifier in its canonical
// "imsi-<15 digits>" form (TS 23.003 §2.2A).
type SUPI string

// Valid reports whether the SUPI has the canonical IMSI form.
func (s SUPI) Valid() bool {
	str := string(s)
	if !strings.HasPrefix(str, "imsi-") {
		return false
	}
	digits := str[len("imsi-"):]
	if len(digits) != 15 {
		return false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// PLMN identifies a network by mobile country and network code.
type PLMN struct {
	MCC string // 3 digits
	MNC string // 2 or 3 digits
}

// String returns "MCC-MNC".
func (p PLMN) String() string { return p.MCC + "-" + p.MNC }

// TestPLMN is the PLMN used by the simulated network (the 001/01 test
// network, as used by OAI testbeds).
var TestPLMN = PLMN{MCC: "001", MNC: "01"}

// SUCI is the Subscription Concealed Identifier: the privacy-preserving
// form of the SUPI transmitted during registration. In null-scheme
// (scheme 0) networks — which includes most testbeds — the MSIN is
// transmitted unconcealed, which is precisely what identity-extraction
// attacks exploit.
type SUCI struct {
	PLMN   PLMN
	Scheme uint8 // 0 = null scheme (plaintext MSIN)
	MSIN   string
}

// String renders the SUCI in a compact diagnostic form.
func (s SUCI) String() string {
	return fmt.Sprintf("suci-%s-%d-%s", s.PLMN, s.Scheme, s.MSIN)
}

// NullScheme reports whether the SUCI exposes its MSIN in plaintext.
func (s SUCI) NullScheme() bool { return s.Scheme == 0 }

// SUCIFromSUPI conceals a SUPI with the given protection scheme. Scheme 0
// keeps the MSIN in the clear.
func SUCIFromSUPI(supi SUPI, scheme uint8) (SUCI, error) {
	if !supi.Valid() {
		return SUCI{}, fmt.Errorf("cell: invalid SUPI %q", supi)
	}
	digits := string(supi)[len("imsi-"):]
	msin := digits[5:] // after MCC (3 digits) + MNC (2 digits)
	if scheme != 0 {
		// Non-null schemes mask the MSIN; we model concealment by
		// asterisks since real ECIES output is opaque anyway.
		msin = strings.Repeat("*", len(msin))
	}
	return SUCI{PLMN: PLMN{MCC: digits[:3], MNC: digits[3:5]}, Scheme: scheme, MSIN: msin}, nil
}

// GUTI is the 5G Globally Unique Temporary Identifier. The telemetry layer
// only needs the TMSI portion, but the AMF tracks the full structure.
type GUTI struct {
	PLMN     PLMN
	AMFSetID uint16
	TMSI     TMSI
}

// String renders the GUTI compactly.
func (g GUTI) String() string {
	return fmt.Sprintf("guti-%s-%d-%s", g.PLMN, g.AMFSetID, g.TMSI)
}

// CipherAlg is a 5G NR ciphering algorithm identifier (TS 33.501 §5.11.1.1).
type CipherAlg uint8

// Ciphering algorithms. NEA0 is the null cipher — its selection after a
// bid-down attack is one of the anomalies 6G-XSec detects.
const (
	NEA0 CipherAlg = iota // null ciphering
	NEA1                  // SNOW 3G based
	NEA2                  // AES-CTR based
	NEA3                  // ZUC based
)

// String returns the 3GPP name.
func (a CipherAlg) String() string {
	if a <= NEA3 {
		return fmt.Sprintf("NEA%d", uint8(a))
	}
	return fmt.Sprintf("CipherAlg(%d)", uint8(a))
}

// Null reports whether the algorithm provides no confidentiality.
func (a CipherAlg) Null() bool { return a == NEA0 }

// IntegAlg is a 5G NR integrity algorithm identifier (TS 33.501 §5.11.1.2).
type IntegAlg uint8

// Integrity algorithms. NIA0 is the null integrity algorithm; TS 33.501
// forbids it outside emergency calls, so observing it is a strong anomaly.
const (
	NIA0 IntegAlg = iota // null integrity
	NIA1                 // SNOW 3G based
	NIA2                 // AES-CMAC based
	NIA3                 // ZUC based
)

// String returns the 3GPP name.
func (a IntegAlg) String() string {
	if a <= NIA3 {
		return fmt.Sprintf("NIA%d", uint8(a))
	}
	return fmt.Sprintf("IntegAlg(%d)", uint8(a))
}

// Null reports whether the algorithm provides no integrity protection.
func (a IntegAlg) Null() bool { return a == NIA0 }

// EstablishmentCause is the RRC establishment cause carried in
// RRCSetupRequest (TS 38.331 §6.2.2).
type EstablishmentCause uint8

// Establishment causes.
const (
	CauseEmergency EstablishmentCause = iota
	CauseHighPriorityAccess
	CauseMTAccess
	CauseMOSignalling
	CauseMOData
	CauseMOVoiceCall
	CauseMOVideoCall
	CauseMOSMS
	CauseMPSPriorityAccess
	CauseMCSPriorityAccess
	causeCount
)

var causeNames = [...]string{
	"emergency", "highPriorityAccess", "mt-Access", "mo-Signalling",
	"mo-Data", "mo-VoiceCall", "mo-VideoCall", "mo-SMS",
	"mps-PriorityAccess", "mcs-PriorityAccess",
}

// String returns the TS 38.331 cause name.
func (c EstablishmentCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Valid reports whether the cause is a defined value.
func (c EstablishmentCause) Valid() bool { return c < causeCount }

// Direction tells whether a control message travels from UE to network or
// the reverse. MobiFlow telemetry records it for every message.
type Direction uint8

// Message directions.
const (
	Uplink   Direction = iota // UE → network
	Downlink                  // network → UE
)

// String returns "UL" or "DL".
func (d Direction) String() string {
	if d == Uplink {
		return "UL"
	}
	return "DL"
}
