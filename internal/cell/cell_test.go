package cell

import (
	"testing"
	"testing/quick"
)

func TestSUPIValid(t *testing.T) {
	cases := []struct {
		supi SUPI
		want bool
	}{
		{"imsi-001010000000001", true},
		{"imsi-00101000000000", false},   // 14 digits
		{"imsi-0010100000000012", false}, // 16 digits
		{"imsi-00101000000000a", false},  // non-digit
		{"001010000000001", false},       // missing prefix
		{"", false},
	}
	for _, c := range cases {
		if got := c.supi.Valid(); got != c.want {
			t.Errorf("%q.Valid() = %v, want %v", c.supi, got, c.want)
		}
	}
}

func TestSUCIFromSUPINullScheme(t *testing.T) {
	suci, err := SUCIFromSUPI("imsi-001010000000001", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !suci.NullScheme() {
		t.Error("scheme 0 not reported as null scheme")
	}
	if suci.MSIN != "0000000001" {
		t.Errorf("MSIN = %q, want 0000000001", suci.MSIN)
	}
	if suci.PLMN.MCC != "001" || suci.PLMN.MNC != "01" {
		t.Errorf("PLMN = %v", suci.PLMN)
	}
}

func TestSUCIFromSUPIConcealed(t *testing.T) {
	suci, err := SUCIFromSUPI("imsi-001010000000001", 1)
	if err != nil {
		t.Fatal(err)
	}
	if suci.NullScheme() {
		t.Error("scheme 1 reported as null scheme")
	}
	if suci.MSIN != "**********" {
		t.Errorf("MSIN = %q, want concealed", suci.MSIN)
	}
}

func TestSUCIFromInvalidSUPI(t *testing.T) {
	if _, err := SUCIFromSUPI("bogus", 0); err == nil {
		t.Error("no error for invalid SUPI")
	}
}

func TestAlgorithmNullness(t *testing.T) {
	if !NEA0.Null() || NEA2.Null() {
		t.Error("CipherAlg.Null misclassifies")
	}
	if !NIA0.Null() || NIA2.Null() {
		t.Error("IntegAlg.Null misclassifies")
	}
}

func TestStringers(t *testing.T) {
	cases := []struct{ got, want string }{
		{RNTI(0x4601).String(), "0x4601"},
		{TMSI(0xDEADBEEF).String(), "0xDEADBEEF"},
		{NEA2.String(), "NEA2"},
		{NIA0.String(), "NIA0"},
		{CipherAlg(9).String(), "CipherAlg(9)"},
		{CauseMOSignalling.String(), "mo-Signalling"},
		{EstablishmentCause(99).String(), "cause(99)"},
		{Uplink.String(), "UL"},
		{Downlink.String(), "DL"},
		{TestPLMN.String(), "001-01"},
		{GUTI{PLMN: TestPLMN, AMFSetID: 1, TMSI: 0x10}.String(), "guti-001-01-1-0x00000010"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestCauseValidity(t *testing.T) {
	for c := EstablishmentCause(0); c < causeCount; c++ {
		if !c.Valid() {
			t.Errorf("cause %d should be valid", c)
		}
	}
	if EstablishmentCause(200).Valid() {
		t.Error("cause 200 should be invalid")
	}
}

// Property: every valid 15-digit IMSI yields a SUCI that retains the PLMN
// and, under the null scheme, the MSIN.
func TestQuickSUCIPreservesIdentity(t *testing.T) {
	f := func(n uint64) bool {
		msin := n % 1_0000000000 // 10-digit MSIN
		supi := SUPI("imsi-00101" + padDigits(msin, 10))
		suci, err := SUCIFromSUPI(supi, 0)
		if err != nil {
			return false
		}
		return suci.MSIN == padDigits(msin, 10) && suci.PLMN == TestPLMN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func padDigits(v uint64, width int) string {
	digits := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return string(digits)
}
