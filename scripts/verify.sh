#!/bin/sh
# Tier-1 verification for the 6G-XSec repo. This script is the canonical
# recipe — ROADMAP.md, README.md, and .claude/skills/verify/SKILL.md all
# point here, so change it in one place only.
#
# Usage: scripts/verify.sh  (from the repo root; ~4 min on a 1-CPU host,
# dominated by the -race test run)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> verify OK"
