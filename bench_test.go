package xsec

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the ablations and micro-benchmarks DESIGN.md
// commits to. Each heavyweight benchmark reuses the cached experiment
// environment (datasets + trained models), so `go test -bench=.` measures
// the experiment evaluation itself, not repeated dataset generation.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The printed artifacts come from cmd/xsec-bench, which shares this code.

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/bench"
	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/ue"
)

// benchSeed keeps every benchmark on the same cached environment.
const benchSeed = 1001

func benchCfg(b *testing.B) bench.Config {
	b.Helper()
	return bench.Quick(benchSeed)
}

// BenchmarkTable1_Schema renders the telemetry schema (Table 1).
func BenchmarkTable1_Schema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2_Detection reproduces Table 2: cross-validated benign
// accuracy and attack-dataset metrics for both models.
func BenchmarkTable2_Detection(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil { // exclude dataset+training
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.EventRecallAE < 0.999 {
			b.Fatalf("AE event recall = %v", res.EventRecallAE)
		}
	}
}

// BenchmarkTable3_LLMMatrix reproduces Table 3 over the live REST path.
func BenchmarkTable3_LLMMatrix(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Score()["chatgpt-4o"] != 6 {
			b.Fatalf("chatgpt-4o score = %d, want 6", res.Score()["chatgpt-4o"])
		}
	}
}

// BenchmarkFigure2_Sequences regenerates the attack message sequences.
func BenchmarkFigure2_Sequences(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4_Reconstruction regenerates the reconstruction-error
// series over the attack dataset.
func BenchmarkFigure4_Reconstruction(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure5_PromptResponse renders the prompt template and the
// analyst response for a BTS DoS window.
func BenchmarkFigure5_PromptResponse(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_WindowSize sweeps the sliding-window size.
func BenchmarkAblation_WindowSize(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationWindowSize(cfg, []int{2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Threshold sweeps the detection percentile.
func BenchmarkAblation_Threshold(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationThreshold(cfg, []float64{99, 95, 90}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Bottleneck sweeps the autoencoder bottleneck width.
func BenchmarkAblation_Bottleneck(b *testing.B) {
	cfg := benchCfg(b)
	if _, err := bench.BuildEnv(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBottleneck(cfg, []int{8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference_AE measures one autoencoder window score — the
// pre-filter cost that makes chaining a cheap detector before the LLM
// viable (§3.3).
func BenchmarkInference_AE(b *testing.B) {
	env, err := bench.BuildEnv(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	vecs := feature.Vectorize(env.Mixed.Trace[:64], env.Models.Vocab)
	wins := feature.WindowsAE(vecs, env.Models.Window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Models.ScoreAEWindow(wins[i%len(wins)])
	}
}

// BenchmarkInference_LSTM measures one LSTM next-entry prediction score.
func BenchmarkInference_LSTM(b *testing.B) {
	env, err := bench.BuildEnv(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	vecs := feature.Vectorize(env.Mixed.Trace[:64], env.Models.Vocab)
	wins, nexts := feature.WindowsLSTM(vecs, env.Models.Window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(wins)
		env.Models.LSTM.Score(wins[j], nexts[j])
	}
}

// BenchmarkTraceScoring measures full-trace window scoring — the batch
// path cmd/xsec-detect and threshold calibration run — sequentially and
// through the worker pool. The parallel variant should approach a
// GOMAXPROCS-factor speedup on multi-core hosts (BENCH_nn.json records
// the measured ratio per machine).
func BenchmarkTraceScoring(b *testing.B) {
	env, err := bench.BuildEnv(benchCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"AE_Sequential", 1},
		{"AE_Parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := env.Models.ScoreTraceAEParallel(env.Mixed.Trace, bc.workers); len(out) == 0 {
					b.Fatal("no windows scored")
				}
			}
		})
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"LSTM_Sequential", 1},
		{"LSTM_Parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := env.Models.ScoreTraceLSTMParallel(env.Mixed.Trace, bc.workers); len(out) == 0 {
					b.Fatal("no windows scored")
				}
			}
		})
	}
}

// BenchmarkE2Loop_Latency measures the live control-loop latency from
// attack traffic hitting the gNB to the MobiWatch alert emerging at the
// RIC — the path that must fit the 10 ms – 1 s near-RT budget (§2.1).
func BenchmarkE2Loop_Latency(b *testing.B) {
	fw, err := core.New(core.Options{
		Seed:         benchSeed,
		ReportPeriod: 5 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: 10, Seed: benchSeed},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fw.Close()
	benign, err := fw.CollectBenign(30)
	if err != nil {
		b.Fatal(err)
	}
	if err := fw.Train(benign); err != nil {
		b.Fatal(err)
	}
	if err := fw.DeployXApps(); err != nil {
		b.Fatal(err)
	}
	attacker := fw.NewUE(ue.OAIUE, 999)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	// Drain cases continuously so the pump never blocks.
	go func() {
		for range fw.Cases() {
		}
	}()

	alertCount := func() uint64 {
		st := fw.WatchStats()
		return st.AlertsRaised.Load() + st.AlertsDropped.Load()
	}
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		before := alertCount()
		start := time.Now()
		res, err := attacker.RunBTSDoS(fw.GNB, 4)
		if err != nil {
			b.Fatal(err)
		}
		for alertCount() == before {
			time.Sleep(200 * time.Microsecond)
		}
		total += time.Since(start)
		// Inactivity cleanup so leaked contexts do not accumulate
		// across iterations.
		b.StopTimer()
		for _, id := range res.UEIDs {
			fw.GNB.ReleaseUE(id)
			fw.AMF.ReleaseUE(id)
		}
		fw.Clock().Advance(2 * time.Second)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms/alert")
}
